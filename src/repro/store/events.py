"""Journal events and the materialized store state.

Three event kinds cover everything the proxy is the system of record
for (Section II.C):

* ``POC_LIST`` — a validated POC list was accepted for a distribution
  task; the payload is the list's canonical wire encoding
  (:meth:`~repro.desword.poclist.PocList.to_bytes`), which carries the
  POCs *and* the participant-pair digraph;
* ``AWARD`` — one double-edged reputation award
  (:class:`~repro.desword.reputation.ScoreEvent`);
* ``QUERY`` — the outcome transcript of one product path query (path,
  quality, and attributed violations);
* ``ROUTE`` — a shard-placement decision made by the proxy router: which
  shard owns a distribution task's POC list, and the product ids whose
  queries must route there.  Journaled by the router's own store so a
  restarted router rebuilds its routing maps (PocList wire bytes do not
  carry product ids).

Every event encodes to one tagged byte string — journaled as one WAL
frame — and :class:`StoreState` replays any sequence of them into the
materialized state a snapshot captures.  POC-list payloads are kept as
raw bytes throughout, so recovered state is byte-identical to what was
journaled by construction.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..crypto.serialize import ByteReader, encode_bytes
from ..desword.reputation import ScoreEvent

__all__ = [
    "PocListRecorded",
    "QueryRecorded",
    "RouteRecorded",
    "StoreState",
    "EventDecodeError",
    "encode_event",
    "decode_event",
]

_POC_LIST_TAG = 0x01
_AWARD_TAG = 0x02
_QUERY_TAG = 0x03
_ROUTE_TAG = 0x04


class EventDecodeError(ValueError):
    """A journal frame does not decode to a known event."""


def _pack_str(text: str) -> bytes:
    raw = text.encode()
    return struct.pack(">H", len(raw)) + raw


def _read_str(reader: ByteReader) -> str:
    (length,) = struct.unpack(">H", reader.take(2))
    return reader.take(length).decode()


def _pack_uint(value: int) -> bytes:
    """Length-prefixed big-endian unsigned int (product ids span 2^128)."""
    width = max(1, (value.bit_length() + 7) // 8)
    return struct.pack(">H", width) + value.to_bytes(width, "big")


def _read_uint(reader: ByteReader) -> int:
    (width,) = struct.unpack(">H", reader.take(2))
    return int.from_bytes(reader.take(width), "big")


@dataclass(frozen=True)
class PocListRecorded:
    """A POC list acceptance, kept as its canonical wire bytes."""

    payload: bytes

    @property
    def task_id(self) -> str:
        (length,) = struct.unpack_from(">H", self.payload, 0)
        return self.payload[2 : 2 + length].decode()


@dataclass(frozen=True)
class QueryRecorded:
    """One finished product path query, as the proxy concluded it."""

    product_id: int
    quality: str
    mode: str
    task_id: str | None
    path: tuple[str, ...]
    violations: tuple[tuple[str, str], ...]  # (kind, participant_id)


@dataclass(frozen=True)
class RouteRecorded:
    """One task-placement decision of the sharded proxy tier."""

    task_id: str
    shard_id: str
    product_ids: tuple[int, ...]


def _encode_award(event: ScoreEvent) -> bytes:
    parts = [
        _pack_str(event.participant_id),
        struct.pack(">d", event.delta),
        _pack_str(event.reason),
    ]
    if event.product_id is None:
        parts.append(b"\x00")
    else:
        parts.append(b"\x01" + _pack_uint(event.product_id))
    return b"".join(parts)


def _decode_award(reader: ByteReader) -> ScoreEvent:
    participant_id = _read_str(reader)
    (delta,) = struct.unpack(">d", reader.take(8))
    reason = _read_str(reader)
    product_id = _read_uint(reader) if reader.take(1) == b"\x01" else None
    return ScoreEvent(participant_id, delta, reason, product_id)


def _encode_query(event: QueryRecorded) -> bytes:
    parts = [
        _pack_uint(event.product_id),
        _pack_str(event.quality),
        _pack_str(event.mode),
    ]
    if event.task_id is None:
        parts.append(b"\x00")
    else:
        parts.append(b"\x01" + _pack_str(event.task_id))
    parts.append(struct.pack(">H", len(event.path)))
    parts.extend(_pack_str(hop) for hop in event.path)
    parts.append(struct.pack(">H", len(event.violations)))
    for kind, participant_id in event.violations:
        parts.append(_pack_str(kind))
        parts.append(_pack_str(participant_id))
    return b"".join(parts)


def _decode_query(reader: ByteReader) -> QueryRecorded:
    product_id = _read_uint(reader)
    quality = _read_str(reader)
    mode = _read_str(reader)
    task_id = _read_str(reader) if reader.take(1) == b"\x01" else None
    (path_len,) = struct.unpack(">H", reader.take(2))
    path = tuple(_read_str(reader) for _ in range(path_len))
    (violation_count,) = struct.unpack(">H", reader.take(2))
    violations = tuple(
        (_read_str(reader), _read_str(reader)) for _ in range(violation_count)
    )
    return QueryRecorded(product_id, quality, mode, task_id, path, violations)


def _encode_route(event: RouteRecorded) -> bytes:
    parts = [
        _pack_str(event.task_id),
        _pack_str(event.shard_id),
        struct.pack(">H", len(event.product_ids)),
    ]
    parts.extend(_pack_uint(pid) for pid in event.product_ids)
    return b"".join(parts)


def _decode_route(reader: ByteReader) -> RouteRecorded:
    task_id = _read_str(reader)
    shard_id = _read_str(reader)
    (count,) = struct.unpack(">H", reader.take(2))
    product_ids = tuple(_read_uint(reader) for _ in range(count))
    return RouteRecorded(task_id, shard_id, product_ids)


def encode_event(event) -> bytes:
    if isinstance(event, PocListRecorded):
        return bytes([_POC_LIST_TAG]) + event.payload
    if isinstance(event, ScoreEvent):
        return bytes([_AWARD_TAG]) + _encode_award(event)
    if isinstance(event, QueryRecorded):
        return bytes([_QUERY_TAG]) + _encode_query(event)
    if isinstance(event, RouteRecorded):
        return bytes([_ROUTE_TAG]) + _encode_route(event)
    raise TypeError(f"not a journal event: {event!r}")


def decode_event(data: bytes):
    if not data:
        raise EventDecodeError("empty journal frame")
    tag, body = data[0], data[1:]
    if tag == _POC_LIST_TAG:
        return PocListRecorded(body)
    reader = ByteReader(body)
    try:
        if tag == _AWARD_TAG:
            event = _decode_award(reader)
        elif tag == _QUERY_TAG:
            event = _decode_query(reader)
        elif tag == _ROUTE_TAG:
            event = _decode_route(reader)
        else:
            raise EventDecodeError(f"unknown event tag {tag:#x}")
        reader.expect_end()
    except (ValueError, struct.error) as exc:
        raise EventDecodeError(f"malformed event frame: {exc}") from exc
    return event


@dataclass
class StoreState:
    """Everything the journal has established, in journal order."""

    poc_lists: dict[str, bytes] = field(default_factory=dict)
    awards: list[ScoreEvent] = field(default_factory=list)
    queries: list[QueryRecorded] = field(default_factory=list)
    routes: dict[str, RouteRecorded] = field(default_factory=dict)
    applied: int = 0  # events applied == next expected global seqno

    def apply(self, event) -> None:
        if isinstance(event, PocListRecorded):
            self.poc_lists[event.task_id] = event.payload
        elif isinstance(event, ScoreEvent):
            self.awards.append(event)
        elif isinstance(event, QueryRecorded):
            self.queries.append(event)
        elif isinstance(event, RouteRecorded):
            self.routes[event.task_id] = event
        else:
            raise TypeError(f"not a journal event: {event!r}")
        self.applied += 1

    def ledger_bytes(self) -> bytes:
        """Canonical encoding of the reputation ledger (award history)."""
        return struct.pack(">I", len(self.awards)) + b"".join(
            _encode_award(event) for event in self.awards
        )

    def scores(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for event in self.awards:
            totals[event.participant_id] = (
                totals.get(event.participant_id, 0.0) + event.delta
            )
        return totals

    def to_bytes(self) -> bytes:
        """Snapshot payload: the full state, journal ordering preserved."""
        parts = [struct.pack(">QI", self.applied, len(self.poc_lists))]
        parts.extend(encode_bytes(raw) for raw in self.poc_lists.values())
        parts.append(self.ledger_bytes())
        parts.append(struct.pack(">I", len(self.queries)))
        parts.extend(encode_bytes(_encode_query(q)) for q in self.queries)
        parts.append(struct.pack(">I", len(self.routes)))
        parts.extend(encode_bytes(_encode_route(r)) for r in self.routes.values())
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "StoreState":
        reader = ByteReader(data)
        applied, poc_count = struct.unpack(">QI", reader.take(12))
        state = cls(applied=applied)
        for _ in range(poc_count):
            event = PocListRecorded(reader.take_bytes())
            state.poc_lists[event.task_id] = event.payload
        (award_count,) = struct.unpack(">I", reader.take(4))
        for _ in range(award_count):
            state.awards.append(_decode_award(reader))
        (query_count,) = struct.unpack(">I", reader.take(4))
        for _ in range(query_count):
            body = ByteReader(reader.take_bytes())
            state.queries.append(_decode_query(body))
            body.expect_end()
        (route_count,) = struct.unpack(">I", reader.take(4))
        for _ in range(route_count):
            body = ByteReader(reader.take_bytes())
            route = _decode_route(body)
            body.expect_end()
            state.routes[route.task_id] = route
        reader.expect_end()
        return state
