"""The append-only record log (write-ahead log).

One file of length-prefixed, CRC32-checksummed frames behind a small
header.  The log is the proxy's source of truth between snapshots: every
state mutation is appended as one frame *before* it is applied, so a
crash at any byte offset loses at most the torn tail of the file — which
recovery detects (length or checksum mismatch) and drops.

Layout::

    header:  b"DSWL" | u16 version | u64 base_seqno          (14 bytes)
    frame:   u32 payload_length | u32 crc32(payload) | payload

``base_seqno`` is the global sequence number of the first frame; after a
compaction the log is rewritten with only the records newer than the
snapshot, so the base moves forward.  Frame *i* of a log has sequence
number ``base_seqno + i``.

Durability policy: every append is flushed to the OS (survives a process
crash); ``fsync_every=N`` batches the much more expensive ``fsync`` so N
appends share one disk barrier (``fsync_every=1`` syncs each append,
``0`` never syncs except on :meth:`RecordLog.sync`/``close``).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from ..obs import DEFAULT_LATENCY_BUCKETS_MS, default_registry, get_logger

__all__ = ["LOG_HEADER_SIZE", "FRAME_HEADER_SIZE", "LogScan", "RecordLog", "WalError"]

_log = get_logger(__name__)

_LOG_MAGIC = b"DSWL"
_LOG_VERSION = 1
_HEADER_STRUCT = struct.Struct(">4sHQ")
_FRAME_STRUCT = struct.Struct(">II")

LOG_HEADER_SIZE = _HEADER_STRUCT.size
FRAME_HEADER_SIZE = _FRAME_STRUCT.size

# A frame larger than this is assumed to be garbage from a torn write
# rather than a real record (the proxy's largest events are POC lists,
# well under a megabyte even for very large tasks).
MAX_FRAME_BYTES = 1 << 28


class WalError(Exception):
    """The log file is structurally unusable (bad header, bad version)."""


@dataclass
class LogScan:
    """What a recovery pass found in one log file."""

    base_seqno: int
    payloads: list[bytes] = field(default_factory=list)
    good_bytes: int = LOG_HEADER_SIZE
    dropped_bytes: int = 0
    drop_reason: str | None = None

    @property
    def next_seqno(self) -> int:
        return self.base_seqno + len(self.payloads)

    def frame_bounds(self) -> list[int]:
        """End offset of each valid frame (used by crash-injection tests)."""
        bounds = []
        offset = LOG_HEADER_SIZE
        for payload in self.payloads:
            offset += FRAME_HEADER_SIZE + len(payload)
            bounds.append(offset)
        return bounds


def scan_log(path: str | os.PathLike) -> LogScan:
    """Read every intact frame, tolerating a torn or truncated tail.

    Stops at the first frame whose header is truncated, whose length is
    implausible, or whose checksum does not match — everything from that
    point on is counted as dropped.  Never raises for tail damage; raises
    :class:`WalError` only when the header itself is unusable.
    """
    data = Path(path).read_bytes()
    if len(data) < LOG_HEADER_SIZE:
        raise WalError(f"log shorter than its header ({len(data)} bytes)")
    magic, version, base_seqno = _HEADER_STRUCT.unpack_from(data, 0)
    if magic != _LOG_MAGIC:
        raise WalError("bad log magic")
    if version != _LOG_VERSION:
        raise WalError(f"unsupported log version {version}")

    scan = LogScan(base_seqno)
    offset = LOG_HEADER_SIZE
    while offset < len(data):
        if offset + FRAME_HEADER_SIZE > len(data):
            scan.drop_reason = "truncated frame header"
            break
        length, crc = _FRAME_STRUCT.unpack_from(data, offset)
        start = offset + FRAME_HEADER_SIZE
        end = start + length
        if length > MAX_FRAME_BYTES:
            scan.drop_reason = "implausible frame length"
            break
        if end > len(data):
            scan.drop_reason = "truncated frame payload"
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            scan.drop_reason = "frame checksum mismatch"
            break
        scan.payloads.append(payload)
        offset = end
        scan.good_bytes = offset
    scan.dropped_bytes = len(data) - scan.good_bytes
    if scan.dropped_bytes:
        metrics = default_registry()
        metrics.counter("store.torn_tail_dropped").inc()
        metrics.counter("store.torn_tail_bytes").inc(scan.dropped_bytes)
        _log.warning(
            "log %s: dropped %d-byte torn tail (%s) after %d frames",
            path, scan.dropped_bytes, scan.drop_reason, len(scan.payloads),
        )
    return scan


class RecordLog:
    """Appender over one log file, with batched fsync."""

    def __init__(self, path: str | os.PathLike, handle, next_seqno: int, fsync_every: int):
        self.path = Path(path)
        self._handle = handle
        self._next_seqno = next_seqno
        self.fsync_every = fsync_every
        self._unsynced = 0

    @classmethod
    def create(
        cls, path: str | os.PathLike, base_seqno: int = 0, fsync_every: int = 8
    ) -> "RecordLog":
        """Start a fresh (truncated) log whose first frame will be ``base_seqno``."""
        handle = open(path, "wb")
        handle.write(_HEADER_STRUCT.pack(_LOG_MAGIC, _LOG_VERSION, base_seqno))
        handle.flush()
        os.fsync(handle.fileno())
        return cls(path, handle, base_seqno, fsync_every)

    @classmethod
    def open(cls, path: str | os.PathLike, fsync_every: int = 8) -> tuple["RecordLog", LogScan]:
        """Open an existing log for appending, repairing any torn tail.

        Returns the log plus the scan of what survived, so the caller can
        replay the intact frames.  The file is truncated back to the last
        intact frame before appends resume, keeping the invariant that
        everything before the write offset is checksummed and valid.
        """
        scan = scan_log(path)
        handle = open(path, "r+b")
        handle.truncate(scan.good_bytes)
        handle.seek(scan.good_bytes)
        return cls(path, handle, scan.next_seqno, fsync_every), scan

    @property
    def next_seqno(self) -> int:
        return self._next_seqno

    def append(self, payload: bytes) -> int:
        """Write one frame; returns the record's sequence number."""
        frame = _FRAME_STRUCT.pack(len(payload), zlib.crc32(payload)) + payload
        self._handle.write(frame)
        self._handle.flush()
        seqno = self._next_seqno
        self._next_seqno += 1
        metrics = default_registry()
        metrics.counter("store.appends").inc()
        metrics.counter("store.bytes_written").inc(len(frame))
        if self.fsync_every > 0:
            self._unsynced += 1
            if self._unsynced >= self.fsync_every:
                self.sync()
        return seqno

    def sync(self) -> None:
        """Force the file to stable storage (one disk barrier)."""
        import time

        self._handle.flush()
        started = time.perf_counter()
        os.fsync(self._handle.fileno())
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self._unsynced = 0
        metrics = default_registry()
        metrics.counter("store.fsyncs").inc()
        metrics.histogram("store.fsync_ms", buckets=DEFAULT_LATENCY_BUCKETS_MS).observe(
            elapsed_ms
        )

    def close(self) -> None:
        if self._handle.closed:
            return
        if self.fsync_every > 0 and self._unsynced:
            self.sync()
        else:
            self._handle.flush()
        self._handle.close()

    def __enter__(self) -> "RecordLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
