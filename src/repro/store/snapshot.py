"""Snapshot files: periodic full-state checkpoints for fast recovery.

A snapshot captures the materialized store state after the first
``covered_seqno`` journal records, so recovery replays *snapshot + log
tail* instead of the full history.  Format::

    b"DSWS" | u16 version | u64 covered_seqno | u32 length | u32 crc32 | payload

Snapshots are written atomically (temp file + fsync + rename) so a crash
mid-write never damages an existing snapshot, and the newest two are
retained so a corrupted latest snapshot can fall back one generation as
long as the log still holds the intervening records.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path

from ..obs import default_registry, get_logger

__all__ = [
    "SnapshotError",
    "snapshot_path",
    "list_snapshots",
    "write_snapshot",
    "load_snapshot",
    "load_latest_snapshot",
    "prune_snapshots",
]

_log = get_logger(__name__)

_SNAP_MAGIC = b"DSWS"
_SNAP_VERSION = 1
_SNAP_STRUCT = struct.Struct(">4sHQII")
_SNAP_PREFIX = "snapshot-"
_SNAP_SUFFIX = ".snap"
SNAPSHOTS_RETAINED = 2


class SnapshotError(Exception):
    """A snapshot file is missing, truncated, or fails its checksum."""


def snapshot_path(directory: str | os.PathLike, covered_seqno: int) -> Path:
    return Path(directory) / f"{_SNAP_PREFIX}{covered_seqno:016d}{_SNAP_SUFFIX}"


def list_snapshots(directory: str | os.PathLike) -> list[Path]:
    """Snapshot files, newest (highest covered seqno) first."""
    found = []
    for entry in Path(directory).glob(f"{_SNAP_PREFIX}*{_SNAP_SUFFIX}"):
        stem = entry.name[len(_SNAP_PREFIX) : -len(_SNAP_SUFFIX)]
        if stem.isdigit():
            found.append((int(stem), entry))
    return [path for _, path in sorted(found, reverse=True)]


def write_snapshot(
    directory: str | os.PathLike, covered_seqno: int, payload: bytes
) -> Path:
    """Atomically persist one checkpoint and prune old generations."""
    target = snapshot_path(directory, covered_seqno)
    temp = target.with_suffix(".tmp")
    header = _SNAP_STRUCT.pack(
        _SNAP_MAGIC, _SNAP_VERSION, covered_seqno, len(payload), zlib.crc32(payload)
    )
    with open(temp, "wb") as handle:
        handle.write(header + payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, target)
    _fsync_dir(directory)
    metrics = default_registry()
    metrics.counter("store.snapshots").inc()
    metrics.counter("store.snapshot_bytes").inc(len(header) + len(payload))
    prune_snapshots(directory)
    return target


def load_snapshot(path: str | os.PathLike) -> tuple[int, bytes]:
    """Returns ``(covered_seqno, payload)`` or raises :class:`SnapshotError`."""
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise SnapshotError(f"unreadable snapshot {path}: {exc}") from exc
    if len(data) < _SNAP_STRUCT.size:
        raise SnapshotError("snapshot shorter than its header")
    magic, version, covered_seqno, length, crc = _SNAP_STRUCT.unpack_from(data, 0)
    if magic != _SNAP_MAGIC:
        raise SnapshotError("bad snapshot magic")
    if version != _SNAP_VERSION:
        raise SnapshotError(f"unsupported snapshot version {version}")
    payload = data[_SNAP_STRUCT.size :]
    if len(payload) != length:
        raise SnapshotError("snapshot payload truncated")
    if zlib.crc32(payload) != crc:
        raise SnapshotError("snapshot checksum mismatch")
    return covered_seqno, payload


def load_latest_snapshot(directory: str | os.PathLike) -> tuple[int, bytes] | None:
    """The newest snapshot that still passes its checksum, if any.

    A damaged newer generation is skipped (and logged); recovery then
    relies on the log holding the records the older snapshot misses.
    """
    for path in list_snapshots(directory):
        try:
            return load_snapshot(path)
        except SnapshotError as exc:
            default_registry().counter("store.snapshot_invalid").inc()
            _log.warning("skipping snapshot %s: %s", path, exc)
    return None


def prune_snapshots(
    directory: str | os.PathLike, keep: int = SNAPSHOTS_RETAINED
) -> None:
    for stale in list_snapshots(directory)[keep:]:
        stale.unlink(missing_ok=True)


def _fsync_dir(directory: str | os.PathLike) -> None:
    """Make the rename itself durable (best effort on odd filesystems)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)
