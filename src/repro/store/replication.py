"""WAL shipping between a shard primary and its read replicas.

The shipping unit is the journal frame: a follower at ``applied`` asks
the primary for every frame from there on (:meth:`ProxyStateStore.tail`)
and journals the payloads verbatim (:meth:`ProxyStateStore.apply_frames`),
so a caught-up follower's log is byte-identical to the primary's tail
and its recovery path is exactly the primary's.  When the primary has
compacted past the follower's position, :func:`replicate` falls back to
checkpoint bootstrap (ship the materialized state, restart the log at
its sequence number) and then tails the remainder.

Shipping is pull-based and synchronous: the sharded proxy tier calls
:func:`replicate` after each ingestion batch, so a promoted replica is
never missing a POC list that the dead primary had acknowledged.
"""

from __future__ import annotations

from ..obs import default_registry, get_logger, trace
from .proxy_store import ProxyStateStore, ReplicationGap

__all__ = ["replicate", "replication_lag"]

_log = get_logger(__name__)


def replication_lag(primary: ProxyStateStore, follower: ProxyStateStore) -> int:
    """Frames the primary has journaled that the follower has not."""
    return max(0, primary.state.applied - follower.state.applied)


def replicate(primary: ProxyStateStore, follower: ProxyStateStore) -> int:
    """Ship every frame the follower is missing; returns frames applied.

    Handles the compaction race: if the primary's log no longer reaches
    back to the follower's position, the follower is bootstrapped from
    the primary's checkpoint first, then tailed as usual.
    """
    with trace.span(
        "store.replicate",
        primary=str(primary.state_dir),
        follower=str(follower.state_dir),
    ):
        try:
            frames = primary.tail(follower.state.applied)
        except ReplicationGap:
            applied, payload = primary.checkpoint_bytes()
            _log.info(
                "bootstrapping %s from checkpoint at %d (log compacted past it)",
                follower.state_dir, applied,
            )
            follower.install_checkpoint(payload)
            frames = primary.tail(follower.state.applied)
        shipped = follower.apply_frames(frames)
    if shipped:
        metrics = default_registry()
        metrics.counter("shard.replication.frames_shipped").inc(shipped)
    default_registry().gauge("shard.replication.lag").set(
        replication_lag(primary, follower)
    )
    return shipped
