"""The `ProofEngine`: one object owning caches, batching, and parallelism.

Every layer of the stack (qTMC commitments, ZK-EDB proofs, POC
aggregation, the query proxy) used to run its cryptography inline with
private per-module caches.  The engine pulls those concerns into one
place:

* **precomputation** — fixed-base windows, Straus tables, and constant
  pairings come from a shared :class:`PrecomputationCache`;
* **batching** — :meth:`ProofEngine.verify_many` folds a whole round of
  EDB proofs into a *single* randomized :class:`PairingBatch`, so N
  proofs of height h cost one final exponentiation instead of N;
* **parallelism** — :meth:`prove_many`, :meth:`verify_many`, and
  :meth:`map_tasks` fan out over the configured executor.

Engines are cheap: they hold an executor and a reference to a cache.
Code that is handed no engine falls back to :func:`default_engine` (a
serial engine over the process-wide cache), so every existing call site
keeps working unchanged.

ZK-EDB types are imported lazily inside methods — the commitment layer
imports this package, so a top-level import would cycle.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Sequence

from ..crypto.hashing import hash_bytes
from ..obs import DEFAULT_SIZE_BUCKETS, default_registry, trace
from .batch import PairingBatch
from .cache import PrecomputationCache, default_cache
from .executors import ParallelExecutor, SerialExecutor
from .tasks import prove_task, verify_chunk_task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crypto.bn import BNCurve
    from ..crypto.curve import G1Group, G1Point, G2Point
    from ..zkedb.params import EdbParams

__all__ = ["ProofEngine", "default_engine"]


class ProofEngine:
    """Shared precomputation + batched proving/verification + execution."""

    def __init__(
        self,
        executor: SerialExecutor | ParallelExecutor | None = None,
        cache: PrecomputationCache | None = None,
    ) -> None:
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache if cache is not None else default_cache()

    # -- pickling: workers receive a fresh serial engine -----------------------

    def __getstate__(self) -> dict:
        # Executors hold pools and the cache holds a lock; neither crosses
        # process boundaries.  A pickled engine wakes up serial, attached
        # to the destination process's shared cache.
        return {}

    def __setstate__(self, state: dict) -> None:
        self.executor = SerialExecutor()
        self.cache = default_cache()

    # -- algebra through the shared cache --------------------------------------

    def fixed_mul(self, group: "G1Group", point, scalar: int):
        """Fixed-base scalar mult for recurring (CRS) points."""
        return self.cache.fixed_mul(group, point, scalar)

    def gen_mul(self, group: "G1Group", scalar: int):
        """Generator mult; the group's window already lives in the cache."""
        return group.mul_gen(scalar)

    def multi_mul(self, group: "G1Group", points, scalars):
        """Straus multi-exp with cached per-point tables (CRS points)."""
        return self.cache.multi_mul(group, points, scalars)

    def constant_pairing(self, curve: "BNCurve", p: "G1Point", q: "G2Point"):
        return self.cache.constant_pairing(curve, p, q)

    # -- execution --------------------------------------------------------------

    @property
    def workers(self) -> int:
        return getattr(self.executor, "workers", 1)

    def map_tasks(self, fn, payloads: Sequence[Any], shared: Any = None) -> list:
        return self.executor.map_tasks(fn, payloads, shared)

    def warm_up(self, params: Any = None) -> None:
        """Prime precomputation, then fork the worker pool (if parallel).

        Ordering matters: the pool forks *after* the tables are warm, so
        every worker inherits them through fork's copy-on-write pages
        instead of re-deriving them cold.  ``params`` may be
        ``EdbParams`` (its ``qtmc`` is warmed) or anything exposing
        ``warm_tables()``; pass None to just fork the pool against
        whatever is already cached.
        """
        if params is not None:
            getattr(params, "qtmc", params).warm_tables()
        start = getattr(self.executor, "ensure_started", None)
        if start is not None:
            start()

    def close(self) -> None:
        """Release the executor's worker pool, if it holds one."""
        shutdown = getattr(self.executor, "shutdown", None)
        if shutdown is not None:
            shutdown()

    def __enter__(self) -> "ProofEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- batched proving --------------------------------------------------------

    def prove_many(self, params: "EdbParams", dec, keys: Sequence[int]) -> list:
        """Prove every key against one decommitment, in parallel if configured.

        Proof generation is deterministic given ``dec``, so the serial and
        parallel paths return byte-identical proofs.
        """
        keys = list(keys)
        metrics = default_registry()
        metrics.counter("engine.prove.proofs").inc(len(keys))
        metrics.histogram(
            "engine.prove.batch_size", buckets=DEFAULT_SIZE_BUCKETS
        ).observe(len(keys))
        with trace.span("engine.prove_many", keys=len(keys), workers=self.workers):
            if self.workers <= 1 or len(keys) < 2:
                from ..zkedb.prove import prove_key

                return [prove_key(params, dec, key) for key in keys]
            from ..zkedb.proofs import decode_proof

            encoded = self.map_tasks(prove_task, keys, shared=(params, dec))
            return [decode_proof(params, blob) for blob in encoded]

    # -- batched verification ---------------------------------------------------

    def verify_many(self, params: "EdbParams", items: Sequence[tuple]) -> list:
        """Verify ``(commitment, key, proof)`` items as few pairing batches.

        All structurally sound proofs in a chunk share one randomized
        pairing batch (one final exponentiation).  If the combined check
        fails, each suspect is re-verified individually, so exactly the
        corrupted proofs come back bad — batching never blurs blame.
        """
        items = list(items)
        if not items:
            return []
        metrics = default_registry()
        metrics.counter("engine.verify.proofs").inc(len(items))
        metrics.histogram(
            "engine.verify.batch_size", buckets=DEFAULT_SIZE_BUCKETS
        ).observe(len(items))
        with trace.span("engine.verify_many", items=len(items), workers=self.workers):
            if self.workers <= 1 or len(items) < 2:
                return _verify_item_chunk(params, items)

            from ..zkedb.verify import EdbVerifyOutcome

            encoded = [
                (commitment.to_bytes(params), key, proof.to_bytes(params))
                for commitment, key, proof in items
            ]
            chunks = _split_chunks(encoded, self.workers)
            results = self.map_tasks(verify_chunk_task, chunks, shared=params)
            outcomes = []
            for chunk_result in results:
                for status, value in chunk_result:
                    outcomes.append(EdbVerifyOutcome(status, value))
            return outcomes


def _split_chunks(seq: list, parts: int) -> list[list]:
    """Split into at most ``parts`` contiguous, near-equal chunks."""
    parts = max(1, min(parts, len(seq)))
    size, extra = divmod(len(seq), parts)
    chunks = []
    start = 0
    for index in range(parts):
        end = start + size + (1 if index < extra else 0)
        chunks.append(seq[start:end])
        start = end
    return chunks


def _verify_item_chunk(params: "EdbParams", items: list) -> list:
    """Serial reference path: one pairing batch over a chunk of proofs.

    Runs inline for serial engines and inside fork-pool workers for
    parallel ones; the chunk-latency histogram and blame counters it
    feeds travel back to the parent registry either way.
    """
    chunk_start = time.perf_counter()
    try:
        return _verify_item_chunk_inner(params, items)
    finally:
        default_registry().histogram("engine.verify.chunk_ms").observe(
            (time.perf_counter() - chunk_start) * 1000.0
        )


def _verify_item_chunk_inner(params: "EdbParams", items: list) -> list:
    from ..zkedb.verify import (
        EdbVerifyOutcome,
        _batch_seed,
        gather_proof_checks,
        verify_proof,
    )

    outcomes: list[EdbVerifyOutcome] = []
    pending: list[tuple[int, list]] = []  # (item index, pairing equations)
    seed_parts: list[bytes] = []
    for index, (commitment, key, proof) in enumerate(items):
        outcome, equations = gather_proof_checks(params, commitment, key, proof)
        outcomes.append(outcome)
        if not outcome.is_bad and equations:
            pending.append((index, equations))
            seed_parts.append(_batch_seed(params, commitment, proof))
    if not pending:
        return outcomes

    batch = PairingBatch(
        params.curve, hash_bytes(b"repro/engine-batch", b"".join(seed_parts))
    )
    for _, equations in pending:
        for pairs in equations:
            batch.add_triples(pairs)
    if batch.check():
        return outcomes

    # Combined batch failed: re-verify suspects one by one to pin blame.
    default_registry().counter("engine.verify.blame_rechecks").inc(len(pending))
    for index, _ in pending:
        commitment, key, proof = items[index]
        outcomes[index] = verify_proof(params, commitment, key, proof)
    return outcomes


def _verify_encoded_chunk(params: "EdbParams", chunk: list) -> list:
    """Worker-side entry: decode wire items, verify, re-encode outcomes."""
    from ..commitments.qmercurial import QtmcCommitment
    from ..crypto.serialize import ByteReader
    from ..zkedb.commit import EdbCommitment
    from ..zkedb.proofs import decode_proof

    items = []
    for com_bytes, key, proof_bytes in chunk:
        reader = ByteReader(com_bytes)
        root = QtmcCommitment(reader.take_g1(params.curve), reader.take_g1(params.curve))
        reader.expect_end()
        items.append((EdbCommitment(root), key, decode_proof(params, proof_bytes)))
    return [(o.status, o.value) for o in _verify_item_chunk(params, items)]


_DEFAULT_ENGINE: ProofEngine | None = None


def default_engine() -> ProofEngine:
    """The process-wide serial engine used when no engine is supplied."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ProofEngine()
    return _DEFAULT_ENGINE
