"""ProofEngine execution layer: caches, batching, pluggable parallelism.

Importing this package installs the shared precomputation cache as the
fixed-base provider for every G1 group in the process — see
:mod:`repro.engine.cache`.
"""

from .batch import PairingBatch
from .cache import PrecomputationCache, default_cache
from .engine import ProofEngine, default_engine
from .executors import ParallelExecutor, SerialExecutor, resolve_executor

__all__ = [
    "PairingBatch",
    "PrecomputationCache",
    "ProofEngine",
    "ParallelExecutor",
    "SerialExecutor",
    "default_cache",
    "default_engine",
    "resolve_executor",
]
