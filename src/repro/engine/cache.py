"""Process-wide precomputation cache.

Every layer of the stack used to keep its own private precomputation: the
G1 groups built generator window tables on demand, the commitment schemes
rebuilt Straus tables for the *same CRS points* on every multi-exp, and
constant pairings of CRS elements were recomputed at every call site.  The
:class:`PrecomputationCache` centralises all three:

* **fixed-base windows** — 4-bit window tables (:class:`FixedBaseWindow`)
  for any (group, point) pair: generators, the qTMC basis ``g_1..g_2q``,
  the TMC ``h``;
* **Straus small tables** — the 0..15 multiples of a point, shared with
  the window tables when both exist, fed into ``G1Group.multi_mul``;
* **MSM bases** — per-basis Pippenger precomputation
  (:class:`~repro.crypto.curve.MsmBasis`) for wide multi-exps over a
  recurring point sequence (large-q CRS material);
* **constant pairings** — memoized ``e(P, Q)`` values for CRS element
  pairs, keyed by canonical encodings.

Group-table keys are ``(group.p, group.b, point)`` — the group's defining
constants, not ``id(group)``, since CPython reuses object ids after
garbage collection and a recycled id must not resurrect another group's
tables.  Equal-parameter group objects therefore also share tables.

Importing this module installs the default cache as the fixed-base
provider of :mod:`repro.crypto.curve`, so even code that never touches a
:class:`~repro.engine.engine.ProofEngine` draws its generator tables from
the shared cache.

The persistent worker pool (:mod:`repro.engine.executors`) leans on this
cache being process-wide: warm it *before* the pool forks
(``QtmcParams.warm_tables()`` then ``ProofEngine.warm_up()``) and every
worker inherits the populated tables through fork's copy-on-write pages —
no re-derivation, no pickling.  Tables built after the fork stay
per-process; only pre-fork warmth is shared.
"""

from __future__ import annotations

from threading import Lock
from typing import TYPE_CHECKING

from ..crypto.curve import (
    PIPPENGER_MIN_POINTS_CACHED,
    FixedBaseWindow,
    G1Group,
    MsmBasis,
    set_fixed_base_provider,
)
from ..obs import MetricsRegistry, default_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crypto.bn import BNCurve
    from ..crypto.curve import G1Point, G2Point
    from ..crypto.tower import Fp12

__all__ = ["PrecomputationCache", "default_cache"]


class PrecomputationCache:
    """Shared tables and memoized pairings, keyed by group/curve identity."""

    TABLE_KINDS = ("windows", "small_tables", "msm_bases", "pairings")

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self._lock = Lock()
        # (group.p, group.b, point) -> FixedBaseWindow.
        self._windows: dict[tuple[int, int, tuple[int, int]], FixedBaseWindow] = {}
        # (group.p, group.b, point) -> 0..15 multiples (Straus per-point table).
        self._small: dict[tuple[int, int, tuple[int, int]], list] = {}
        # (group.p, group.b, points tuple) -> MsmBasis (Pippenger negations).
        self._msm_bases: dict[tuple[int, int, tuple], MsmBasis] = {}
        # (id(curve), g1 bytes, g2 bytes) -> e(P, Q).
        self._pairings: dict[tuple[int, bytes, bytes], "Fp12"] = {}
        # Hit/miss accounting per table kind: per-cache counters back
        # `stats()` (isolated, so a private cache in a test reads only its
        # own traffic) and the registry counters feed the process-wide
        # metrics export (`repro evaluate --metrics-out`).
        from ..obs.metrics import Counter

        metrics = metrics if metrics is not None else default_registry()
        self._hits = {kind: Counter() for kind in self.TABLE_KINDS}
        self._misses = {kind: Counter() for kind in self.TABLE_KINDS}
        self._registry_hits = {
            kind: metrics.counter("engine.cache.hits", table=kind)
            for kind in self.TABLE_KINDS
        }
        self._registry_misses = {
            kind: metrics.counter("engine.cache.misses", table=kind)
            for kind in self.TABLE_KINDS
        }

    def _hit(self, kind: str) -> None:
        self._hits[kind].inc()
        self._registry_hits[kind].inc()

    def _miss(self, kind: str) -> None:
        self._misses[kind].inc()
        self._registry_misses[kind].inc()

    # -- fixed-base windows --------------------------------------------------

    def window(self, group: G1Group, point: tuple[int, int]) -> FixedBaseWindow:
        """The full fixed-base window table for ``point`` (built once)."""
        key = (group.p, group.b, point)
        window = self._windows.get(key)
        if window is None:
            self._miss("windows")
            with self._lock:
                window = self._windows.get(key)
                if window is None:
                    window = FixedBaseWindow(group, point)
                    self._windows[key] = window
        else:
            self._hit("windows")
        return window

    def small_table(self, group: G1Group, point: tuple[int, int]) -> list:
        """The 0..15 multiples of ``point`` (cheaper than a full window)."""
        key = (group.p, group.b, point)
        window = self._windows.get(key)
        if window is not None:
            self._hit("small_tables")
            return window.small_table
        table = self._small.get(key)
        if table is None:
            self._miss("small_tables")
            row = group.small_multiples(point)
            with self._lock:
                table = self._small.setdefault(key, row)
        else:
            self._hit("small_tables")
        return table

    def msm_basis(self, group: G1Group, points) -> MsmBasis:
        """Pippenger precomputation for a recurring basis (built once)."""
        key = (group.p, group.b, tuple(points))
        basis = self._msm_bases.get(key)
        if basis is None:
            self._miss("msm_bases")
            with self._lock:
                basis = self._msm_bases.get(key)
                if basis is None:
                    basis = MsmBasis(group, points)
                    self._msm_bases[key] = basis
        else:
            self._hit("msm_bases")
        return basis

    def fixed_mul(self, group: G1Group, point, scalar: int):
        """Fixed-base multiplication through the shared window table."""
        if point is None:
            return None
        return self.window(group, point).mul(scalar)

    def multi_mul(self, group: G1Group, points, scalars):
        """Multi-exp with cached precomputation, auto-selected by width.

        Only use for points that recur across calls (CRS material); caching
        tables for one-shot points would grow the cache without benefit.
        Narrow inputs run Straus over cached per-point small tables; wide
        ones (``PIPPENGER_MIN_POINTS_CACHED``+) run the bucket method over
        a cached :class:`MsmBasis`, since at that width even pre-built
        Straus tables lose to Pippenger's fewer windows.
        """
        if len(points) >= PIPPENGER_MIN_POINTS_CACHED:
            basis = self.msm_basis(group, points)
            return group.multi_mul_pippenger(points, scalars, negs=basis.negs)
        tables = [
            None if pt is None else self.small_table(group, pt) for pt in points
        ]
        return group.multi_mul(points, scalars, tables=tables)

    # -- constant pairings -----------------------------------------------------

    def constant_pairing(
        self, curve: "BNCurve", p_point: "G1Point", q_point: "G2Point"
    ) -> "Fp12":
        """Memoized ``e(P, Q)`` for pairs that recur (CRS elements)."""
        from ..crypto.pairing import pairing
        from ..crypto.serialize import g1_to_bytes, g2_to_bytes

        key = (id(curve), g1_to_bytes(curve, p_point), g2_to_bytes(curve, q_point))
        value = self._pairings.get(key)
        if value is None:
            self._miss("pairings")
            value = pairing(curve, p_point, q_point)
            with self._lock:
                value = self._pairings.setdefault(key, value)
        else:
            self._hit("pairings")
        return value

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        """Table sizes plus this cache's own hit/miss counts per kind."""
        return {
            "windows": len(self._windows),
            "small_tables": len(self._small),
            "msm_bases": len(self._msm_bases),
            "pairings": len(self._pairings),
            "hits": {kind: int(c.value) for kind, c in self._hits.items()},
            "misses": {kind: int(c.value) for kind, c in self._misses.items()},
        }

    def clear(self) -> None:
        with self._lock:
            self._windows.clear()
            self._small.clear()
            self._msm_bases.clear()
            self._pairings.clear()


_DEFAULT_CACHE = PrecomputationCache()


def default_cache() -> PrecomputationCache:
    """The process-wide cache shared by every engine without its own."""
    return _DEFAULT_CACHE


# Route G1Group.mul_gen through the shared cache (see module docstring).
set_fixed_base_provider(_DEFAULT_CACHE.window)
