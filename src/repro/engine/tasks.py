"""Module-level worker functions for the process-pool executor.

Each function has the ``fn(shared, payload)`` shape the executors expect
and is importable by name, so it survives pickling into worker processes.
Payloads and results cross process boundaries as wire bytes (via
:mod:`repro.crypto.serialize` encodings) or plain picklable dataclasses.
The heavyweight ``shared`` context (params, schemes) is pickled once per
distinct object and memoized by token inside the persistent workers (see
:mod:`repro.engine.executors`), so steady-state calls never re-ship it —
and the CRS precompute tables themselves are inherited for free through
the post-warm ``fork``.
"""

from __future__ import annotations

__all__ = ["prove_task", "verify_chunk_task", "poc_agg_task"]


def prove_task(shared, key: int) -> bytes:
    """Prove one key against a shared (params, dec) pair; returns wire bytes."""
    from ..zkedb.prove import prove_key

    params, dec = shared
    return prove_key(params, dec, key).to_bytes(params)


def verify_chunk_task(shared, chunk) -> list:
    """Batch-verify one chunk of encoded (com, key, proof) items.

    ``chunk`` is a list of ``(commitment_bytes, key, proof_bytes)``
    tuples; the result is a list of ``(status, value)`` pairs mirroring
    ``EdbVerifyOutcome`` so it stays trivially picklable.
    """
    from .engine import _verify_encoded_chunk

    params = shared
    return _verify_encoded_chunk(params, chunk)


def poc_agg_task(shared, payload):
    """Aggregate one participant's traces into a (POC, DPOC) pair.

    ``prior`` (a :class:`~repro.poc.scheme.PocDecommitment` or None) lets
    backends that support incremental recommitment reuse the
    participant's previous frontier instead of rebuilding the whole tree.
    """
    scheme = shared
    participant_id, traces, rng, prior = payload
    return scheme.poc_agg(traces, participant_id, rng, prior=prior)
