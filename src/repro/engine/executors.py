"""Execution strategies for the proof engine.

An executor maps a picklable worker function over a list of payloads,
optionally with a per-batch ``shared`` context (params, a scheme, ...)
that is shipped to each worker once rather than per payload.

Two strategies exist:

* :class:`SerialExecutor` — runs everything inline.  Zero overhead, the
  default, and the reference semantics: the parallel path must produce
  byte-identical results.
* :class:`ParallelExecutor` — fans out over a **persistent** fork pool.
  The pool is forked once, lazily, at the first parallel call — by which
  point the caller has typically primed the process-wide precomputation
  cache (``QtmcParams.warm_tables``), so every worker inherits the warmed
  tables via copy-on-write instead of re-deriving them.  Subsequent calls
  reuse the same workers: no per-call fork, no per-call re-pickling of
  tables.  Payloads are dispatched as ``len(payloads)/workers``-sized
  chunks (one future per chunk, not per task), and the pickled ``shared``
  context is memoized on both sides — the parent pickles it once per
  object, the workers cache it by token across calls.  On platforms
  without ``fork``, or when the pool breaks, execution silently falls
  back to serial so callers never need a try/except.

Worker functions must be module-level callables of the form
``fn(shared, payload) -> result`` with picklable payloads and results —
see :mod:`repro.engine.tasks` for the built-in ones.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from ..obs import TraceContext, default_registry, default_tracer, get_logger

__all__ = ["SerialExecutor", "ParallelExecutor", "resolve_executor"]

TaskFn = Callable[[Any, Any], Any]

_log = get_logger(__name__)

# Worker-side memo of unpickled shared contexts, keyed by the parent's
# token.  Tokens are never reused within an executor (and each executor
# owns its pool), so a hit is always the right object.  Bounded so a
# long-lived pool serving many distinct contexts cannot grow without
# limit.
_SHARED_CACHE: "OrderedDict[int, Any]" = OrderedDict()
_SHARED_CACHE_LIMIT = 8


def _run_chunk(
    fn: TaskFn,
    token: int,
    blob: bytes | None,
    ctx: dict | None,
    chunk: list,
) -> tuple:
    """Worker-side chunk runner: run payloads, ship metrics + spans home.

    The fork start method hands each worker a copy-on-write snapshot of
    the parent's metrics registry; whatever the tasks increment would die
    with the worker.  Wrapping every chunk in a snapshot/diff window lets
    the parent fold the child's counts back in (see
    :meth:`ParallelExecutor._unwrap`), so pooled runs report the same
    cache-hit / batch / verification metrics as serial ones.  Because the
    worker is persistent, the window is per *chunk*: the diff only carries
    this chunk's increments, however many calls the worker has served.

    Spans follow the same delta discipline: the chunk runs under the
    caller's trace context, and every root recorded during it — fragments
    parented on the caller's span — is exported with the result so the
    parent's tracer can :meth:`~repro.obs.SpanTracer.adopt` them for
    stitching.  Recorded roots are dropped afterwards either way, so a
    persistent worker never accumulates span state across calls.
    """
    if token == 0:
        shared = None
    else:
        shared = _SHARED_CACHE.get(token, _run_chunk)  # sentinel: self
        if shared is _run_chunk:
            shared = pickle.loads(blob)
            _SHARED_CACHE[token] = shared
            while len(_SHARED_CACHE) > _SHARED_CACHE_LIMIT:
                _SHARED_CACHE.popitem(last=False)
        else:
            _SHARED_CACHE.move_to_end(token)
    registry = default_registry()
    tracer = default_tracer()
    trace_ctx = TraceContext.from_dict(ctx) if ctx else None
    before = registry.snapshot()
    mark = len(tracer.roots)
    results = []
    timings = []
    with tracer.activate(trace_ctx):
        for payload in chunk:
            start = time.perf_counter()
            results.append(fn(shared, payload))
            timings.append((time.perf_counter() - start) * 1000.0)
    spans = tracer.export_roots(mark) if trace_ctx is not None else []
    del tracer.roots[mark:]
    return results, registry.diff(before), os.getpid(), timings, spans


def _split_chunks(seq: list, parts: int) -> list[list]:
    """Split into at most ``parts`` contiguous, near-equal chunks."""
    parts = max(1, min(parts, len(seq)))
    size, extra = divmod(len(seq), parts)
    chunks = []
    start = 0
    for index in range(parts):
        end = start + size + (1 if index < extra else 0)
        chunks.append(seq[start:end])
        start = end
    return chunks


class SerialExecutor:
    """Run tasks inline, in submission order."""

    workers = 1

    def map_tasks(self, fn: TaskFn, payloads: Sequence[Any], shared: Any = None) -> list:
        return [fn(shared, payload) for payload in payloads]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ParallelExecutor:
    """Fan tasks out over a persistent process pool, preserving order.

    ``workers=0`` means "use the CPU count".  Small batches (fewer than
    two payloads, or a single worker) run serially — dispatch would only
    add cost.  The pool is created at the first parallel call (or an
    explicit :meth:`ensure_started`) and reused for the executor's
    lifetime; create it *after* warming the precomputation cache so the
    workers inherit the tables through fork's copy-on-write pages.
    """

    def __init__(self, workers: int = 0) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers or (os.cpu_count() or 1)
        self._serial = SerialExecutor()
        self._pool: ProcessPoolExecutor | None = None
        # id(shared) -> (token, pickled bytes, strong ref).  The strong ref
        # pins the object so its id cannot be recycled while the entry
        # lives; bounded FIFO keeps at most a handful of contexts pinned.
        self._shared_blobs: "OrderedDict[int, tuple[int, bytes, Any]]" = OrderedDict()
        self._next_token = 0

    # -- pool lifecycle ------------------------------------------------------

    def ensure_started(self) -> bool:
        """Fork the worker pool now (idempotent); False if unavailable.

        Call this right after priming the precomputation cache: the
        workers fork immediately and inherit the warmed tables, so no
        later call pays fork latency or cold-cache rederivation.
        """
        return self._ensure_pool() is not None

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._pool is not None:
            return self._pool
        try:
            mp_context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return None
        try:
            pool = ProcessPoolExecutor(max_workers=self.workers, mp_context=mp_context)
            # ProcessPoolExecutor forks lazily, one process per submission;
            # force every worker into existence *now* so the fork point —
            # and with it the copy-on-write cache snapshot — is the pool
            # creation time, not some later call.
            for future in [pool.submit(os.getpid) for _ in range(self.workers)]:
                future.result()
        except (OSError, RuntimeError):  # pragma: no cover - resource limits
            _log.warning("process pool unavailable; parallel calls will run serially")
            return None
        self._pool = pool
        default_registry().counter("engine.pool.starts").inc()
        return pool

    def shutdown(self) -> None:
        """Tear the persistent pool down; the next call re-creates it."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            default_registry().counter("engine.pool.rebuilds").inc()
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - best-effort cleanup
                pass

    # -- shared-context memoization -----------------------------------------

    def _shared_token(self, shared: Any) -> tuple[int, bytes | None]:
        """Memoized (token, pickle) for a shared context object.

        The parent pickles each distinct context once, not once per call;
        workers memoize the unpickled object by token (see
        :func:`_run_chunk`), so steady-state calls ship bytes that are
        already cached on both ends.
        """
        if shared is None:
            return 0, None
        key = id(shared)
        entry = self._shared_blobs.get(key)
        if entry is not None and entry[2] is shared:
            self._shared_blobs.move_to_end(key)
            return entry[0], entry[1]
        self._next_token += 1
        blob = pickle.dumps(shared, protocol=pickle.HIGHEST_PROTOCOL)
        self._shared_blobs[key] = (self._next_token, blob, shared)
        while len(self._shared_blobs) > 4:
            self._shared_blobs.popitem(last=False)
        return self._next_token, blob

    # -- execution -----------------------------------------------------------

    def map_tasks(self, fn: TaskFn, payloads: Sequence[Any], shared: Any = None) -> list:
        payloads = list(payloads)
        if self.workers <= 1 or len(payloads) < 2:
            return self._serial.map_tasks(fn, payloads, shared)
        pool = self._ensure_pool()
        if pool is None:
            _log.warning("no process pool; running %d tasks serially", len(payloads))
            return self._serial.map_tasks(fn, payloads, shared)
        chunks = _split_chunks(payloads, self.workers)
        token, blob = self._shared_token(shared)
        ctx = default_tracer().current_context()
        ctx_dict = ctx.to_dict() if ctx else None
        try:
            futures = [
                pool.submit(_run_chunk, fn, token, blob, ctx_dict, chunk)
                for chunk in chunks
            ]
            wrapped = [future.result() for future in futures]
        except (OSError, RuntimeError, BrokenProcessPool):
            _log.warning(
                "process pool failed; running %d tasks serially", len(payloads)
            )
            self._discard_pool()
            return self._serial.map_tasks(fn, payloads, shared)
        return self._unwrap(wrapped)

    def _unwrap(self, wrapped: list) -> list:
        """Merge per-chunk child metrics deltas; surface pool utilization.

        Worker pids are normalised to stable slot indices (order of first
        appearance) so the per-worker counters keep bounded label
        cardinality whatever pids the OS hands out.
        """
        registry = default_registry()
        tracer = default_tracer()
        task_ms = registry.histogram("engine.pool.task_ms")
        chunk_counter = registry.counter("engine.pool.chunks")
        slots: dict[int, int] = {}
        results = []
        for chunk_results, delta, worker_pid, timings, spans in wrapped:
            registry.merge(delta)
            if spans:
                # Re-home the worker's span fragments; the collector
                # re-parents them under the caller's span at stitch time.
                tracer.adopt(spans)
            chunk_counter.inc()
            slot = slots.setdefault(worker_pid, len(slots))
            tasks_counter = registry.counter("engine.pool.tasks", worker=slot)
            busy_counter = registry.counter("engine.pool.busy_ms", worker=slot)
            for elapsed_ms in timings:
                tasks_counter.inc()
                busy_counter.inc(elapsed_ms)
                task_ms.observe(elapsed_ms)
            results.extend(chunk_results)
        registry.gauge("engine.pool.workers").set(self.workers)
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelExecutor(workers={self.workers})"


def resolve_executor(workers: int) -> SerialExecutor | ParallelExecutor:
    """``workers > 1`` gets a pool; 0 or 1 stays serial."""
    if workers > 1:
        return ParallelExecutor(workers)
    return SerialExecutor()
