"""Execution strategies for the proof engine.

An executor maps a picklable worker function over a list of payloads,
optionally with a per-batch ``shared`` context (params, a scheme, ...)
that is shipped to each worker once rather than per payload.

Two strategies exist:

* :class:`SerialExecutor` — runs everything inline.  Zero overhead, the
  default, and the reference semantics: the parallel path must produce
  byte-identical results.
* :class:`ParallelExecutor` — fans out over a ``ProcessPoolExecutor``.
  The worker function and shared context are delivered through the pool
  initializer (pickled once per worker, not per task).  On platforms
  without ``fork`` or when the pool fails to come up, it silently falls
  back to serial execution so callers never need a try/except.

Worker functions must be module-level callables of the form
``fn(shared, payload) -> result`` with picklable payloads and results —
see :mod:`repro.engine.tasks` for the built-in ones.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

from ..obs import TraceContext, default_registry, default_tracer, get_logger

__all__ = ["SerialExecutor", "ParallelExecutor", "resolve_executor"]

TaskFn = Callable[[Any, Any], Any]

_log = get_logger(__name__)

# Worker-side globals, populated by the pool initializer so each task
# submission only pickles its payload.
_WORKER_FN: TaskFn | None = None
_WORKER_SHARED: Any = None
_WORKER_CTX: TraceContext | None = None


def _init_worker(fn: TaskFn, shared: Any, ctx: dict | None = None) -> None:
    global _WORKER_FN, _WORKER_SHARED, _WORKER_CTX
    _WORKER_FN = fn
    _WORKER_SHARED = shared
    _WORKER_CTX = TraceContext.from_dict(ctx) if ctx else None


def _run_payload(payload: Any) -> tuple:
    """Worker-side task wrapper: run, ship metrics delta and spans home.

    The fork start method hands each worker a copy-on-write snapshot of
    the parent's metrics registry; whatever the task increments would die
    with the worker.  Wrapping every task in a snapshot/diff window lets
    the parent fold the child's counts back in (see
    :meth:`ParallelExecutor.map_tasks`), so pooled runs report the same
    cache-hit / batch / verification metrics as serial ones.

    Spans follow the same delta discipline: the task runs under the
    caller's trace context (shipped once through the initializer), and
    every root recorded during the task — a fragment parented on the
    caller's span — is exported with the result so the parent's tracer
    can :meth:`~repro.obs.SpanTracer.adopt` it for stitching.
    """
    assert _WORKER_FN is not None, "worker pool initializer did not run"
    registry = default_registry()
    tracer = default_tracer()
    before = registry.snapshot()
    mark = len(tracer.roots)
    start = time.perf_counter()
    with tracer.activate(_WORKER_CTX):
        result = _WORKER_FN(_WORKER_SHARED, payload)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    spans = tracer.export_roots(mark) if _WORKER_CTX is not None else []
    return result, registry.diff(before), os.getpid(), elapsed_ms, spans


class SerialExecutor:
    """Run tasks inline, in submission order."""

    workers = 1

    def map_tasks(self, fn: TaskFn, payloads: Sequence[Any], shared: Any = None) -> list:
        return [fn(shared, payload) for payload in payloads]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ParallelExecutor:
    """Fan tasks out over a process pool, preserving submission order.

    ``workers=0`` means "use the CPU count".  Small batches (fewer than
    two payloads, or a single worker) run serially — a pool would only
    add startup cost.
    """

    def __init__(self, workers: int = 0) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers or (os.cpu_count() or 1)
        self._serial = SerialExecutor()

    def map_tasks(self, fn: TaskFn, payloads: Sequence[Any], shared: Any = None) -> list:
        payloads = list(payloads)
        if self.workers <= 1 or len(payloads) < 2:
            return self._serial.map_tasks(fn, payloads, shared)
        try:
            mp_context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            _log.warning("no fork start method; running %d tasks serially", len(payloads))
            return self._serial.map_tasks(fn, payloads, shared)
        workers = min(self.workers, len(payloads))
        chunksize = max(1, len(payloads) // (workers * 4))
        tracer = default_tracer()
        ctx = tracer.current_context()
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=mp_context,
                initializer=_init_worker,
                initargs=(fn, shared, ctx.to_dict() if ctx else None),
            ) as pool:
                wrapped = list(pool.map(_run_payload, payloads, chunksize=chunksize))
        except (OSError, RuntimeError):  # pragma: no cover - resource limits
            _log.warning("process pool unavailable; running %d tasks serially", len(payloads))
            return self._serial.map_tasks(fn, payloads, shared)
        return self._unwrap(wrapped)

    def _unwrap(self, wrapped: list) -> list:
        """Merge per-task child metrics deltas; surface pool utilization.

        Worker pids are normalised to stable slot indices (order of first
        appearance) so the per-worker counters keep bounded label
        cardinality across many short-lived pools.
        """
        registry = default_registry()
        tracer = default_tracer()
        task_ms = registry.histogram("engine.pool.task_ms")
        slots: dict[int, int] = {}
        results = []
        for result, delta, worker_pid, elapsed_ms, spans in wrapped:
            registry.merge(delta)
            if spans:
                # Re-home the worker's span fragments; the collector
                # re-parents them under the caller's span at stitch time.
                tracer.adopt(spans)
            slot = slots.setdefault(worker_pid, len(slots))
            registry.counter("engine.pool.tasks", worker=slot).inc()
            registry.counter("engine.pool.busy_ms", worker=slot).inc(elapsed_ms)
            task_ms.observe(elapsed_ms)
            results.append(result)
        registry.gauge("engine.pool.workers").set(self.workers)
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelExecutor(workers={self.workers})"


def resolve_executor(workers: int) -> SerialExecutor | ParallelExecutor:
    """``workers > 1`` gets a pool; 0 or 1 stays serial."""
    if workers > 1:
        return ParallelExecutor(workers)
    return SerialExecutor()
