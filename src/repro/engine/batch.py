"""Randomized pairing-product batching.

A :class:`PairingBatch` accumulates pairing triples ``e(P, Q)`` that are
each expected to multiply to one, scales every contribution by a random
coefficient drawn from a deterministic seed, merges contributions that
share a G2 base, and checks everything with a single multi-pairing (one
set of Miller loops, one final exponentiation).

This generalises the batcher that used to live privately inside
``zkedb/verify.py``: that one could only batch the levels of a *single*
proof.  Because this class is keyed off a curve rather than EDB params it
can just as well fold an entire round of proofs — the engine's
``verify_many`` builds one batch for a whole probe round.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..crypto.pairing import multi_pairing
from ..crypto.rng import DeterministicRng
from ..obs import default_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crypto.bn import BNCurve

__all__ = ["PairingBatch"]


class PairingBatch:
    """Accumulates randomly weighted pairing triples, merged by G2 base."""

    def __init__(self, curve: "BNCurve", seed: bytes):
        self.curve = curve
        self.rng = DeterministicRng(seed)
        self.groups: dict = {}
        self.equations = 0

    def add_triples(self, pairs: Iterable) -> None:
        """Add one equation's pairs under a fresh random coefficient.

        All pairs passed in a single call share the coefficient — they
        form one pairing-product equation whose product must be one.
        Identity pairs are short-circuited here: ``e(O, Q)`` and
        ``e(P, O)`` contribute 1 to the product whatever the coefficient,
        so they never reach the Miller loop (counted under
        ``engine.batch.identity_skipped``).
        """
        delta = self.curve.random_scalar(self.rng)
        self.equations += 1
        skipped = 0
        for g1_point, g2_point in pairs:
            if g1_point is None or g2_point is None:
                skipped += 1
                continue
            key = (g2_point[0], g2_point[1])
            self.groups.setdefault(key, []).append((g1_point, delta))
        if skipped:
            default_registry().counter("engine.batch.identity_skipped").inc(skipped)

    def check(self) -> bool:
        metrics = default_registry()
        metrics.counter("engine.batch.checks").inc()
        metrics.counter("engine.batch.equations_folded").inc(self.equations)
        # A naive verifier runs one final exponentiation per equation;
        # folding spends exactly one, whatever the batch size.
        metrics.counter("engine.batch.finalexp_saved").inc(
            max(0, self.equations - 1)
        )
        curve = self.curve
        merged = []
        for key, weighted in self.groups.items():
            points = [point for point, _ in weighted]
            scalars = [delta for _, delta in weighted]
            combined = curve.g1.multi_mul(points, scalars)
            if combined is None:
                # Coefficients cancelled: this G2 base contributes 1.
                default_registry().counter("engine.batch.identity_skipped").inc()
                continue
            merged.append((combined, (key[0], key[1])))
        return multi_pairing(curve, merged).is_one()
