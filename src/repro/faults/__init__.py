"""Deterministic chaos for the protocol stack.

FoundationDB-style simulation testing for DE-Sword: every fault — drops,
duplicates, delays, payload corruption, partitions, scripted endpoint
crashes — is drawn from a seeded :class:`~repro.crypto.rng.DeterministicRng`
according to a declarative :class:`FaultProfile`, so a failing chaos run
reproduces byte-for-byte from its seed.  Three layers:

* :mod:`repro.faults.profile` — the :class:`FaultProfile` config (global
  rates, per-edge/per-kind :class:`EdgeRule` overrides, scripted
  :class:`Partition` windows and :class:`CrashEvent` schedules), with a
  CLI-friendly ``parse()`` accepting JSON files or ``k=v`` specs;
* :mod:`repro.faults.network` — :class:`FaultyNetwork`, a
  :class:`~repro.desword.network.SimNetwork`-compatible wrapper that
  injects the plan on every wire leg and deduplicates redelivered
  requests by idempotency id;
* :mod:`repro.faults.retry` / :mod:`repro.faults.breaker` — the
  resilience counterpart: :class:`RetryPolicy`-driven
  :class:`ReliableChannel` (exponential backoff, deterministic jitter,
  simulated-ms deadlines) and the proxy's per-participant
  :class:`CircuitBreaker` quarantine.

Everything meters through :mod:`repro.obs` (``faults.injected``,
``net.retries``, ``net.timeouts``, ``proxy.breaker.*``).
"""

from .breaker import BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN, BreakerPolicy, CircuitBreaker
from .network import FaultyNetwork, corrupt_message
from .profile import CrashEvent, EdgeRule, FaultProfile, Partition
from .retry import ReliableChannel, RetryBudget, RetryBudgetExhausted, RetryPolicy
from .toxics import FrameVerdict, Toxics

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CrashEvent",
    "EdgeRule",
    "FaultProfile",
    "FaultyNetwork",
    "FrameVerdict",
    "Partition",
    "ReliableChannel",
    "RetryBudget",
    "RetryBudgetExhausted",
    "RetryPolicy",
    "Toxics",
    "corrupt_message",
]
