"""Retry with deterministic exponential backoff over simulated time.

A :class:`ReliableChannel` wraps any network with a :class:`RetryPolicy`:
each :class:`~repro.desword.errors.NetworkTimeout` charges the attempt's
wait to the network's simulated clock, then backs off (exponential with
deterministic jitter) and retries the *same* message — stamped with an
idempotency id when the network supports it, so redelivered requests are
processed at most once.  Attempts stop at ``max_attempts`` or when the
per-request simulated-ms deadline would be exceeded, surfacing
:class:`~repro.desword.errors.ParticipantUnresponsiveError`.

With ``policy=None`` the channel is a true pass-through: no stamping, no
extra accounting — the reliable path stays byte-identical.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass

from ..crypto.rng import DeterministicRng
from ..desword.errors import NetworkTimeout, ParticipantUnresponsiveError
from ..desword.messages import Message
from ..obs import default_registry, trace

__all__ = [
    "ReliableChannel",
    "RetryBudget",
    "RetryBudgetExhausted",
    "RetryPolicy",
]


class RetryBudgetExhausted(ParticipantUnresponsiveError):
    """The shared retry budget refused another retry (storm prevention)."""


class RetryBudget:
    """Token bucket bounding the *fleet-wide* retry rate of one client.

    Per-request backoff caps how hard one call hammers a peer; under
    chaos, though, every in-flight call times out at once and the
    aggregate retry wave is what tips an overloaded server over.  The
    budget couples retries to successes-in-progress: every first attempt
    deposits ``ratio`` tokens, every retry withdraws a whole token, and
    when the bucket is dry the retry is refused with
    :class:`RetryBudgetExhausted` instead of queueing more load.
    ``min_tokens`` keeps a floor so low-traffic clients can still retry;
    ``cap`` stops an idle period from banking an unbounded burst.

    Thread-safe: one budget is meant to be shared across every channel
    and socket client a process owns.
    """

    def __init__(self, ratio: float = 0.1, min_tokens: float = 5.0, cap: float = 100.0):
        if ratio < 0:
            raise ValueError(f"ratio must be >= 0, got {ratio}")
        if min_tokens < 0:
            raise ValueError(f"min_tokens must be >= 0, got {min_tokens}")
        if cap < min_tokens:
            raise ValueError(f"cap ({cap}) must be >= min_tokens ({min_tokens})")
        self.ratio = ratio
        self.min_tokens = min_tokens
        self.cap = cap
        self._tokens = min_tokens
        self._lock = threading.Lock()
        self.deposits = 0
        self.withdrawals = 0
        self.refusals = 0

    @property
    def tokens(self) -> float:
        return self._tokens

    def deposit(self) -> None:
        """Credit one first attempt."""
        with self._lock:
            self._tokens = min(self.cap, self._tokens + self.ratio)
            self.deposits += 1

    def withdraw(self) -> bool:
        """Spend one retry token; False means the retry must not happen."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.withdrawals += 1
                return True
            self.refusals += 1
            return False


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff, per-attempt timeout, and per-request deadline (simulated ms)."""

    max_attempts: int = 4
    base_backoff_ms: float = 5.0
    backoff_factor: float = 2.0
    jitter: float = 0.5
    timeout_ms: float = 50.0
    deadline_ms: float = 2000.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_ms < 0:
            raise ValueError(f"base_backoff_ms must be >= 0, got {self.base_backoff_ms}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be > 0, got {self.timeout_ms}")
        if self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms}")

    def backoff_ms(self, attempt: int, rng: DeterministicRng) -> float:
        """Backoff before retry number ``attempt + 1`` (0-based), jittered."""
        backoff = self.base_backoff_ms * self.backoff_factor**attempt
        if self.jitter:
            backoff *= 1.0 + self.jitter * rng.random()
        return backoff


class ReliableChannel:
    """Retrying request/send wrapper; a pass-through when ``policy`` is None."""

    def __init__(
        self,
        network,
        policy: RetryPolicy | None = None,
        rng: DeterministicRng | None = None,
        budget: RetryBudget | None = None,
    ):
        self.network = network
        self.policy = policy
        self.rng = rng or DeterministicRng("retry")
        self.budget = budget
        self._counter = 0
        # Idempotency ids only matter on networks that can redeliver.
        self._stamping = policy is not None and getattr(
            network, "supports_idempotency", False
        )

    def request(self, sender: str, recipient: str, message: Message) -> Message | None:
        if self.policy is None:
            return self.network.request(sender, recipient, message)
        return self._attempt(self.network.request, sender, recipient, message)

    def send(self, sender: str, recipient: str, message: Message) -> None:
        if self.policy is None:
            self.network.send(sender, recipient, message)
            return
        self._attempt(self.network.send, sender, recipient, message)

    # -- internals ---------------------------------------------------------------

    def _stamp(self, sender: str, recipient: str, message: Message) -> Message:
        if not self._stamping or message.msg_id is not None:
            return message
        self._counter += 1
        return dataclasses.replace(
            message, msg_id=f"{sender}>{recipient}#{self._counter}"
        )

    def _attempt(self, op, sender: str, recipient: str, message: Message):
        message = self._stamp(sender, recipient, message)
        policy = self.policy
        if self.budget is not None:
            self.budget.deposit()
        spent_ms = 0.0
        for attempt in range(policy.max_attempts):
            try:
                return op(sender, recipient, message)
            except ParticipantUnresponsiveError:
                raise  # a nested channel already exhausted its retries
            except NetworkTimeout:
                # The sender waited out this attempt hearing nothing.
                metrics = default_registry()
                self.network.stats.simulated_ms += policy.timeout_ms
                spent_ms += policy.timeout_ms
                metrics.counter("net.timeouts", kind=message.kind).inc()
                backoff = policy.backoff_ms(attempt, self.rng)
                out_of_budget = (
                    attempt + 1 >= policy.max_attempts
                    or spent_ms + backoff > policy.deadline_ms
                )
                if out_of_budget:
                    # Annotates the enclosing stage span (the per-attempt
                    # wire spans have already closed with the timeout).
                    trace.event(
                        "net.unresponsive",
                        kind=message.kind,
                        peer=recipient,
                        attempts=attempt + 1,
                    )
                    raise ParticipantUnresponsiveError(
                        f"{recipient!r} unresponsive: {attempt + 1} attempts, "
                        f"{spent_ms:.0f}ms of simulated waiting"
                    ) from None
                if self.budget is not None and not self.budget.withdraw():
                    metrics.counter(
                        "service.client.retry_budget_exhausted", kind=message.kind
                    ).inc()
                    trace.event(
                        "net.budget_exhausted", kind=message.kind, peer=recipient
                    )
                    raise RetryBudgetExhausted(
                        f"retry budget exhausted after {attempt + 1} attempts "
                        f"to {recipient!r}"
                    ) from None
                self.network.stats.simulated_ms += backoff
                spent_ms += backoff
                metrics.counter("net.retries", kind=message.kind).inc()
                trace.event(
                    "net.retry", kind=message.kind, peer=recipient, attempt=attempt + 1
                )
        raise AssertionError("unreachable: retry loop always returns or raises")
