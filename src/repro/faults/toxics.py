"""Deterministic per-frame toxic decisions for the TCP interposer.

The socket-world counterpart of :class:`~repro.faults.network.FaultyNetwork`'s
per-leg fault plan: a :class:`Toxics` instance judges one *frame* at a
time on one direction of one proxied connection, drawing every decision
from a :class:`~repro.crypto.rng.DeterministicRng` seeded by
``(profile.seed, link, direction)``.  Because TCP preserves byte order
within a direction, the frame sequence a pump sees is a pure function of
what the peer wrote — so the verdict sequence replays byte-for-byte from
the profile seed, exactly like the sim-world plan.

The profile's sim-only knobs (``drop``/``duplicate``/``corrupt``/
``delay``) and its wire-only knobs (``reset``/``blackhole``/
``jitter_ms``/``bandwidth_kbps``/``slow_close_ms``) both apply here;
:meth:`FaultProfile.rates_for` never reads the wire-only fields, which is
what lets one profile string drive both worlds.

Tick semantics mirror the sim: one tick per judged frame on the
*request* (client->server) direction.  Partition windows and the crash
schedule are expressed in those ticks; a crash window for the
interposer's identity turns it dark (frames swallowed, new connections
refused) until the restart tick.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.rng import DeterministicRng
from .profile import FaultProfile

__all__ = ["FrameVerdict", "Toxics"]

# Judged-frame actions, in verdict priority order.
PASS = "pass"
DROP = "drop"
RESET = "reset"
BLACKHOLE = "blackhole"


@dataclass(frozen=True)
class FrameVerdict:
    """What the interposer must do with one frame.

    ``action`` is one of ``pass``/``drop``/``reset``/``blackhole``;
    ``duplicate``/``corrupt``/``delay_ms`` only matter on ``pass``.
    """

    action: str = PASS
    duplicate: bool = False
    corrupt: bool = False
    delay_ms: float = 0.0

    @property
    def forwards(self) -> bool:
        return self.action == PASS


class Toxics:
    """Seeded verdict stream for one direction of one proxied link."""

    def __init__(
        self,
        profile: FaultProfile,
        link: str,
        direction: str = "c2s",
        *,
        identity: str | None = None,
        peer: str = "client",
    ):
        self.profile = profile
        self.link = link
        self.direction = direction
        # The interposer's identity in the profile's partition groups and
        # crash schedule (e.g. a shard id); the peer is whoever talks
        # through it.
        self.identity = identity
        self.peer = peer
        self.rng = DeterministicRng(f"{profile.seed}/toxics/{link}/{direction}")
        self.tick = 0
        self.injected: dict[str, int] = {}

    # -- schedule windows --------------------------------------------------------

    def dark(self, tick: int | None = None) -> bool:
        """Whether a crash window for our identity covers this tick."""
        if self.identity is None:
            return False
        tick = self.tick if tick is None else tick
        for event in self.profile.crashes:
            if event.identity != self.identity:
                continue
            if tick >= event.at and (
                event.restart_at is None or tick < event.restart_at
            ):
                return True
        return False

    def partitioned(self, tick: int | None = None) -> bool:
        """Whether a partition window separates us from the peer now."""
        if self.identity is None:
            return False
        tick = self.tick if tick is None else tick
        return any(
            partition.active(tick)
            and partition.separates(self.identity, self.peer)
            for partition in self.profile.partitions
        )

    # -- per-frame judgement -----------------------------------------------------

    def judge(self, sender: str = "", recipient: str = "", kind: str = "") -> FrameVerdict:
        """One deterministic verdict; advances the tick on the request leg.

        Draw order is fixed (drop, duplicate, corrupt, delay, reset,
        blackhole) so a verdict sequence is reproducible even when most
        rates are zero — a zero rate consumes no randomness, exactly like
        the sim plan's short-circuit draws.
        """
        profile = self.profile
        if self.direction == "c2s":
            self.tick += 1
        if self.dark():
            return self._record(FrameVerdict(BLACKHOLE))
        if self.partitioned():
            self._count("partition")
            return FrameVerdict(DROP)
        rates = profile.rates_for(sender, recipient, kind)
        if rates.drop and self.rng.random() < rates.drop:
            self._count("drop")
            return FrameVerdict(DROP)
        duplicate = bool(rates.duplicate) and self.rng.random() < rates.duplicate
        corrupt = bool(rates.corrupt) and self.rng.random() < rates.corrupt
        delay_ms = 0.0
        if rates.delay and self.rng.random() < rates.delay:
            delay_ms = rates.delay_ms
            if profile.jitter_ms:
                delay_ms += profile.jitter_ms * self.rng.random()
        if profile.reset and self.rng.random() < profile.reset:
            self._count("reset")
            return FrameVerdict(RESET)
        if profile.blackhole and self.rng.random() < profile.blackhole:
            return self._record(FrameVerdict(BLACKHOLE))
        if duplicate:
            self._count("duplicate")
        if corrupt:
            self._count("corrupt")
        if delay_ms:
            self._count("delay")
        return FrameVerdict(PASS, duplicate=duplicate, corrupt=corrupt, delay_ms=delay_ms)

    def _record(self, verdict: FrameVerdict) -> FrameVerdict:
        self._count(verdict.action)
        return verdict

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    # -- byte-level toxics -------------------------------------------------------

    def corrupt_payload(self, payload: bytes) -> bytes:
        """Flip one payload byte (the frame CRC turns this into a reset)."""
        if not payload:
            return payload
        index = self.rng.randrange(len(payload))
        return payload[:index] + bytes([payload[index] ^ 0xFF]) + payload[index + 1:]

    def pace_ms(self, nbytes: int) -> float:
        """Transmission delay for ``nbytes`` at the throttled bandwidth."""
        if self.profile.bandwidth_kbps <= 0:
            return 0.0
        return nbytes / (self.profile.bandwidth_kbps * 1000.0 / 8.0) * 1000.0
