"""Per-participant circuit breakers: the proxy's quarantine.

A participant that keeps timing out (or answering garbage) is costing the
proxy retries on every probe.  The breaker trips after
``failure_threshold`` consecutive wire-level failures: probes are then
skipped outright — attributed as ``UNRESPONSIVE`` so silence keeps
feeding the reputation engine — until ``cooldown_ms`` of simulated time
has passed, at which point one half-open probe is allowed through.  A
successful probe closes the circuit; a failed one re-opens it.

The clock is injected (the proxy passes the network's simulated-ms
counter), so breaker behaviour is as deterministic as everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..obs import default_registry, get_logger, trace

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]

_log = get_logger(__name__)

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

# Gauge encoding for proxy.breaker.state{participant=...}.
_STATE_VALUE = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}


@dataclass(frozen=True)
class BreakerPolicy:
    """When to open, how long to stay open, how to probe back closed."""

    failure_threshold: int = 3
    cooldown_ms: float = 500.0
    half_open_probes: int = 1

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_ms <= 0:
            raise ValueError(f"cooldown_ms must be > 0, got {self.cooldown_ms}")
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


class CircuitBreaker:
    """Closed → open → half-open state machines, one per participant."""

    def __init__(self, policy: BreakerPolicy, clock: Callable[[], float]):
        self.policy = policy
        self.clock = clock
        self._state: dict[str, str] = {}
        self._consecutive_failures: dict[str, int] = {}
        self._open_until: dict[str, float] = {}
        self._probe_successes: dict[str, int] = {}

    def state_of(self, participant_id: str) -> str:
        self._maybe_half_open(participant_id)
        return self._state.get(participant_id, BREAKER_CLOSED)

    def allow(self, participant_id: str) -> bool:
        """Whether the proxy should spend a probe on this participant."""
        return self.state_of(participant_id) != BREAKER_OPEN

    def record_success(self, participant_id: str) -> None:
        # Fast path: an untripped participant with no failure streak is the
        # steady state — successes there must cost two dict reads, nothing more.
        if self._consecutive_failures.get(participant_id):
            self._consecutive_failures[participant_id] = 0
        if self._state.get(participant_id, BREAKER_CLOSED) == BREAKER_CLOSED:
            return
        state = self.state_of(participant_id)
        if state == BREAKER_HALF_OPEN:
            self._probe_successes[participant_id] = (
                self._probe_successes.get(participant_id, 0) + 1
            )
            if self._probe_successes[participant_id] >= self.policy.half_open_probes:
                self._transition(participant_id, BREAKER_CLOSED)

    def record_failure(self, participant_id: str) -> None:
        state = self.state_of(participant_id)
        if state == BREAKER_HALF_OPEN:
            self._trip(participant_id)  # the probe failed: straight back open
            return
        failures = self._consecutive_failures.get(participant_id, 0) + 1
        self._consecutive_failures[participant_id] = failures
        if failures >= self.policy.failure_threshold:
            self._trip(participant_id)

    def snapshot(self) -> dict[str, str]:
        """Current state per participant the breaker has ever tracked."""
        return {pid: self.state_of(pid) for pid in sorted(self._state)}

    # -- internals ---------------------------------------------------------------

    def _maybe_half_open(self, participant_id: str) -> None:
        if (
            self._state.get(participant_id) == BREAKER_OPEN
            and self.clock() >= self._open_until[participant_id]
        ):
            self._probe_successes[participant_id] = 0
            self._transition(participant_id, BREAKER_HALF_OPEN)

    def _trip(self, participant_id: str) -> None:
        self._open_until[participant_id] = self.clock() + self.policy.cooldown_ms
        self._consecutive_failures[participant_id] = 0
        default_registry().counter("proxy.breaker.opened").inc()
        self._transition(participant_id, BREAKER_OPEN)

    def _transition(self, participant_id: str, state: str) -> None:
        if self._state.get(participant_id, BREAKER_CLOSED) == state:
            return
        self._state[participant_id] = state
        metrics = default_registry()
        metrics.gauge("proxy.breaker.state", participant=participant_id).set(
            _STATE_VALUE[state]
        )
        metrics.counter("proxy.breaker.transitions", to=state).inc()
        trace.event("breaker", participant=participant_id, to=state)
        _log.info("breaker for %r -> %s", participant_id, state)
