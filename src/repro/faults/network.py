"""A fault-injecting wrapper over the deterministic network simulator.

:class:`FaultyNetwork` presents the :class:`~repro.desword.network.SimNetwork`
surface (register/replace/send/request/stats/taps) while running every
wire leg through a seeded fault plan.  Losses surface as
:class:`~repro.desword.errors.NetworkTimeout` — the synchronous
equivalent of a sender waiting out its deadline — so the retry layer and
the proxy's timeout handling see exactly what a real lossy fabric would
give them.

Endpoints registered through the wrapper are shimmed with an idempotency
cache: a request carrying a ``msg_id`` that was already answered returns
the cached response without re-invoking the handler, which is what makes
retries and duplicate deliveries safe (at-most-once processing on an
at-least-once wire).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from ..crypto.rng import DeterministicRng
from ..desword.errors import NetworkTimeout
from ..desword.messages import (
    Message,
    NextParticipantResponse,
    PocTransfer,
    ProofResponse,
    QueryRequest,
)
from ..desword.network import Endpoint, NetworkStats, SimNetwork, wire_span
from ..obs import default_registry, get_logger, trace
from .profile import FaultProfile

__all__ = ["FaultyNetwork", "DownEndpoint", "corrupt_message"]

_log = get_logger(__name__)


def _flip_byte(data: bytes, rng: DeterministicRng) -> bytes:
    index = rng.randrange(len(data))
    return data[:index] + bytes([data[index] ^ 0xFF]) + data[index + 1:]


def corrupt_message(message: Message, rng: DeterministicRng) -> Message:
    """Flip one payload byte; messages with no corruptible payload pass through.

    Only byte-carrying fields are touched (proof bytes, POC bytes, the
    claimed next participant), mirroring what line noise can actually
    reach — headers and enum fields are assumed checksummed away.
    """
    if isinstance(message, ProofResponse) and message.proof_bytes:
        return dataclasses.replace(
            # The decoded-object shortcut must not survive corruption.
            message, proof_bytes=_flip_byte(message.proof_bytes, rng), proof=None
        )
    if isinstance(message, QueryRequest) and message.poc_bytes:
        return dataclasses.replace(
            message, poc_bytes=_flip_byte(message.poc_bytes, rng)
        )
    if isinstance(message, PocTransfer) and message.poc_bytes:
        return dataclasses.replace(
            message, poc_bytes=_flip_byte(message.poc_bytes, rng)
        )
    if isinstance(message, NextParticipantResponse) and message.next_participant:
        return dataclasses.replace(
            message, next_participant=message.next_participant + "?"
        )
    return message


class DownEndpoint:
    """A crashed identity: every delivery attempt times out."""

    def __init__(self, identity: str):
        self.identity = identity

    def handle_message(self, sender: str, message: Message) -> Message | None:
        raise NetworkTimeout(f"endpoint {self.identity!r} is down")


class _DedupEndpoint:
    """Answer-once shim: caches responses by idempotency id."""

    def __init__(self, inner: Endpoint):
        self.inner = inner
        self._responses: dict[str, Message | None] = {}

    def handle_message(self, sender: str, message: Message) -> Message | None:
        msg_id = message.msg_id
        if msg_id is not None and msg_id in self._responses:
            default_registry().counter("net.dedup_hits", kind=message.kind).inc()
            trace.event("net.dedup_hit", kind=message.kind, msg_id=msg_id)
            return self._responses[msg_id]
        response = self.inner.handle_message(sender, message)
        if msg_id is not None:
            self._responses[msg_id] = response
        return response


class FaultyNetwork:
    """SimNetwork-compatible delivery with seeded fault injection.

    One *tick* of the fault clock elapses per request leg (sends and the
    request half of round trips); partitions and the crash schedule are
    expressed in ticks, so a profile replays identically for a given
    message sequence.  Faults on the response leg of a round trip happen
    *after* the handler ran — the classic lost-ack case that idempotency
    ids exist for.
    """

    supports_idempotency = True

    def __init__(
        self,
        inner: SimNetwork | None = None,
        profile: FaultProfile | None = None,
        rng: DeterministicRng | None = None,
    ):
        self.inner = inner or SimNetwork()
        self.profile = profile or FaultProfile()
        self.rng = rng or DeterministicRng(f"faults/{self.profile.seed}")
        self.tick = 0
        self.injected: dict[str, int] = {}
        self._parked: dict[str, Endpoint] = {}  # crashed identity -> shimmed endpoint
        self._crashed_applied: set[int] = set()
        self._restarted_applied: set[int] = set()

    # -- SimNetwork surface ------------------------------------------------------

    @property
    def stats(self) -> NetworkStats:
        return self.inner.stats

    @property
    def latency(self):
        return self.inner.latency

    def register(self, identity: str, endpoint: Endpoint) -> None:
        self.inner.register(identity, _DedupEndpoint(endpoint))

    def replace(self, identity: str, endpoint: Endpoint) -> Endpoint:
        """Swap the endpoint behind an identity (works while crashed too)."""
        wrapper = _DedupEndpoint(endpoint)
        if identity in self._parked:
            old = self._parked[identity]
            self._parked[identity] = wrapper
        else:
            old = self.inner.replace(identity, wrapper)
        return old.inner if isinstance(old, _DedupEndpoint) else old

    def unregister(self, identity: str) -> None:
        self._parked.pop(identity, None)
        self.inner.unregister(identity)

    def knows(self, identity: str) -> bool:
        return self.inner.knows(identity)

    def add_tap(self, tap: Callable[[str, str, Message], None]) -> None:
        self.inner.add_tap(tap)

    def reset_stats(self) -> NetworkStats:
        return self.inner.reset_stats()

    def send(self, sender: str, recipient: str, message: Message) -> None:
        with wire_span("net.send", message, recipient) as message:
            self._outbound(sender, recipient, message)

    def request(self, sender: str, recipient: str, message: Message) -> Message | None:
        # The wire span opens *outside* the fault plan, so drops and
        # partitions annotate the attempt they killed and a retried
        # request gets a fresh span per attempt.
        with wire_span("net.request", message, recipient) as message:
            response = self._outbound(sender, recipient, message)
            if response is None:
                return None
            return self._inbound(recipient, sender, response)

    # -- crash control -----------------------------------------------------------

    def crash(self, identity: str) -> None:
        """Take an endpoint down; in-flight and future deliveries time out."""
        if identity in self._parked:
            return
        self._parked[identity] = self.inner.replace(identity, DownEndpoint(identity))
        self._count("crash")
        _log.info("endpoint %r crashed at tick %d", identity, self.tick)

    def restart(self, identity: str) -> None:
        """Bring a crashed endpoint back (state intact, like a process restart)."""
        parked = self._parked.pop(identity, None)
        if parked is not None:
            self.inner.replace(identity, parked)
            self._count("restart")
            _log.info("endpoint %r restarted at tick %d", identity, self.tick)

    def is_down(self, identity: str) -> bool:
        return identity in self._parked

    def fault_summary(self) -> dict:
        """What the plan actually injected so far (for CLI/JSON output).

        When a socket tier is serving this network, its vitals (active
        connections, queue depth, sheds) ride along under ``service`` so
        ``repro health`` folds chaos and overload into one view.
        """
        summary = {"tick": self.tick, "injected": dict(self.injected)}
        if self.stats.service:
            summary["service"] = dict(self.stats.service)
        return summary

    # -- the fault plan ----------------------------------------------------------

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        default_registry().counter("faults.injected", kind=kind).inc()
        # Fault attribution: mark the span this fault landed on (the
        # wire span of the leg, or whatever stage span is innermost).
        trace.event("fault", kind=kind, tick=self.tick)

    def _advance_schedule(self) -> None:
        for index, event in enumerate(self.profile.crashes):
            if index not in self._crashed_applied and self.tick >= event.at:
                self._crashed_applied.add(index)
                if self.knows(event.identity):
                    self.crash(event.identity)
            if (
                event.restart_at is not None
                and index not in self._restarted_applied
                and self.tick >= event.restart_at
            ):
                self._restarted_applied.add(index)
                self.restart(event.identity)

    def _partitioned(self, a: str, b: str) -> bool:
        return any(
            partition.active(self.tick) and partition.separates(a, b)
            for partition in self.profile.partitions
        )

    def _outbound(self, sender: str, recipient: str, message: Message) -> Message | None:
        """The request leg: faults evaluated before the handler runs."""
        self.tick += 1
        self._advance_schedule()
        rates = self.profile.rates_for(sender, recipient, message.kind)
        if self._partitioned(sender, recipient):
            self._count("partition")
            raise NetworkTimeout(
                f"{sender!r} -> {recipient!r} partitioned at tick {self.tick}"
            )
        if rates.drop and self.rng.random() < rates.drop:
            self._count("drop")
            raise NetworkTimeout(
                f"{message.kind} {sender!r} -> {recipient!r} dropped"
            )
        if rates.corrupt and self.rng.random() < rates.corrupt:
            mutated = corrupt_message(message, self.rng)
            if mutated is not message:
                self._count("corrupt")
                message = mutated
        if rates.delay and self.rng.random() < rates.delay:
            self._count("delay")
            self.inner.stats.simulated_ms += rates.delay_ms
        duplicate = rates.duplicate and self.rng.random() < rates.duplicate
        response = self.inner.deliver(sender, recipient, message)
        if duplicate:
            # Redelivery of the same frame: costs wire bytes; the dedup
            # shim keeps the handler's effect at-most-once when stamped.
            self._count("duplicate")
            self.inner.deliver(sender, recipient, message)
        return response

    def _inbound(self, responder: str, requester: str, response: Message) -> Message:
        """The response leg: the handler already ran, the answer may be lost."""
        rates = self.profile.rates_for(responder, requester, response.kind)
        if rates.corrupt and self.rng.random() < rates.corrupt:
            mutated = corrupt_message(response, self.rng)
            if mutated is not response:
                self._count("corrupt")
                response = mutated
        if rates.delay and self.rng.random() < rates.delay:
            self._count("delay")
            self.inner.stats.simulated_ms += rates.delay_ms
        if self._partitioned(responder, requester):
            self._count("partition")
            raise NetworkTimeout(
                f"response {responder!r} -> {requester!r} partitioned"
            )
        if rates.drop and self.rng.random() < rates.drop:
            self._count("drop")
            raise NetworkTimeout(
                f"{response.kind} response {responder!r} -> {requester!r} dropped"
            )
        self.inner.account(responder, requester, response)
        if rates.duplicate and self.rng.random() < rates.duplicate:
            self._count("duplicate")
            self.inner.account(responder, requester, response)
        return response
