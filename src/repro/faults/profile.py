"""Declarative, reproducible fault plans.

A :class:`FaultProfile` is pure data: global fault rates, ordered
per-edge/per-kind overrides, partition windows, and a crash/restart
schedule, all in terms of the network's deterministic delivery clock
(one tick per request leg).  Feeding the same profile and seed to a
:class:`~repro.faults.network.FaultyNetwork` replays the exact same
faults, which is what makes chaos sweeps debuggable.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, replace

__all__ = ["EdgeRule", "Partition", "CrashEvent", "FaultProfile"]

_RATE_FIELDS = ("drop", "duplicate", "corrupt", "delay")

# Socket-only toxic rates: the TCP interposer reads these, the in-process
# FaultyNetwork never does (its rates_for() covers only _RATE_FIELDS), so
# one profile string configures both worlds without either misparsing the
# other's knobs.
_WIRE_RATE_FIELDS = ("reset", "blackhole")


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class EdgeRule:
    """Fault rates scoped to matching traffic.

    ``sender`` / ``recipient`` / ``kind`` are exact matches, ``None``
    matching anything; the first matching rule *replaces* the profile's
    global rates for that leg (so a rule of all zeros exempts an edge).
    """

    sender: str | None = None
    recipient: str | None = None
    kind: str | None = None
    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    delay_ms: float = 10.0

    def __post_init__(self):
        for name in _RATE_FIELDS:
            _check_rate(name, getattr(self, name))
        if self.delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {self.delay_ms}")

    def matches(self, sender: str, recipient: str, kind: str) -> bool:
        return (
            (self.sender is None or self.sender == sender)
            and (self.recipient is None or self.recipient == recipient)
            and (self.kind is None or self.kind == kind)
        )


@dataclass(frozen=True)
class Partition:
    """The network splits into groups for a window of delivery ticks.

    Traffic between identities in *different* listed groups is lost while
    the window is active; identities not listed in any group are
    unaffected.  ``stop=None`` means the partition never heals.
    """

    groups: tuple[tuple[str, ...], ...]
    start: int = 0
    stop: int | None = None

    def __post_init__(self):
        object.__setattr__(
            self, "groups", tuple(tuple(group) for group in self.groups)
        )
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError(f"stop ({self.stop}) must be after start ({self.start})")

    def active(self, tick: int) -> bool:
        return tick >= self.start and (self.stop is None or tick < self.stop)

    def separates(self, a: str, b: str) -> bool:
        group_a = group_b = None
        for index, group in enumerate(self.groups):
            if a in group:
                group_a = index
            if b in group:
                group_b = index
        return group_a is not None and group_b is not None and group_a != group_b


@dataclass(frozen=True)
class CrashEvent:
    """Scripted endpoint crash (and optional restart) by delivery tick."""

    identity: str
    at: int = 0
    restart_at: int | None = None

    def __post_init__(self):
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.restart_at is not None and self.restart_at <= self.at:
            raise ValueError(
                f"restart_at ({self.restart_at}) must be after at ({self.at})"
            )


@dataclass(frozen=True)
class FaultProfile:
    """The complete, seeded fault plan for one chaos run."""

    seed: str = "chaos"
    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    delay_ms: float = 10.0
    rules: tuple[EdgeRule, ...] = ()
    partitions: tuple[Partition, ...] = ()
    crashes: tuple[CrashEvent, ...] = ()
    # Wire-only toxics (see repro.faults.toxics / repro.service.chaos):
    # mid-stream connection resets, half-open blackholes, delay jitter,
    # bandwidth throttling, and a lingering slow close on reset.
    reset: float = 0.0
    blackhole: float = 0.0
    jitter_ms: float = 0.0
    bandwidth_kbps: float = 0.0
    slow_close_ms: float = 0.0

    def __post_init__(self):
        for name in _RATE_FIELDS + _WIRE_RATE_FIELDS:
            _check_rate(name, getattr(self, name))
        for name in ("delay_ms", "jitter_ms", "bandwidth_kbps", "slow_close_ms"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        object.__setattr__(self, "rules", tuple(self.rules))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "crashes", tuple(self.crashes))

    @property
    def enabled(self) -> bool:
        """Whether this profile can inject anything at all."""
        return (
            any(getattr(self, name) > 0 for name in _RATE_FIELDS)
            or any(
                getattr(rule, name) > 0
                for rule in self.rules
                for name in _RATE_FIELDS
            )
            or bool(self.partitions)
            or bool(self.crashes)
            or self.wire_enabled
        )

    @property
    def wire_enabled(self) -> bool:
        """Whether any socket-only toxic is armed."""
        return (
            any(getattr(self, name) > 0 for name in _WIRE_RATE_FIELDS)
            or self.jitter_ms > 0
            or self.bandwidth_kbps > 0
        )

    def rates_for(self, sender: str, recipient: str, kind: str) -> EdgeRule:
        """The effective rates for one leg: first matching rule, else globals."""
        for rule in self.rules:
            if rule.matches(sender, recipient, kind):
                return rule
        return EdgeRule(
            drop=self.drop,
            duplicate=self.duplicate,
            corrupt=self.corrupt,
            delay=self.delay,
            delay_ms=self.delay_ms,
        )

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultProfile":
        data = dict(data)
        data["rules"] = tuple(
            rule if isinstance(rule, EdgeRule) else EdgeRule(**rule)
            for rule in data.get("rules", ())
        )
        data["partitions"] = tuple(
            p if isinstance(p, Partition) else Partition(**p)
            for p in data.get("partitions", ())
        )
        data["crashes"] = tuple(
            c if isinstance(c, CrashEvent) else CrashEvent(**c)
            for c in data.get("crashes", ())
        )
        return cls(**data)

    @classmethod
    def parse(cls, spec: str) -> "FaultProfile":
        """A profile from a JSON file path or an inline ``k=v,k=v`` spec.

        Inline keys: the global rates (``drop``, ``duplicate``/``dup``,
        ``corrupt``, ``delay``), ``delay_ms``, ``seed``, repeatable
        ``crash=IDENTITY@AT`` / ``crash=IDENTITY@AT-RESTART`` entries,
        and the wire-only toxics (``reset``, ``blackhole``, ``jitter_ms``,
        ``bandwidth_kbps``/``bw``, ``slow_close_ms``) the TCP interposer
        applies and the in-process network ignores.
        Example: ``drop=0.1,dup=0.02,reset=0.01,seed=run7,crash=node3@40-90``.
        """
        if spec.endswith(".json") or os.path.exists(spec):
            with open(spec) as handle:
                return cls.from_dict(json.load(handle))
        fields: dict = {}
        crashes: list[CrashEvent] = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"malformed fault spec entry {part!r}")
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "seed":
                fields["seed"] = value
            elif key == "crash":
                identity, _, window = value.partition("@")
                if not identity or not window:
                    raise ValueError(f"malformed crash entry {part!r}")
                at, _, restart = window.partition("-")
                crashes.append(
                    CrashEvent(
                        identity,
                        int(at),
                        int(restart) if restart else None,
                    )
                )
            elif key in (
                "drop", "duplicate", "dup", "corrupt", "delay", "delay_ms",
                "reset", "blackhole", "jitter_ms", "bandwidth_kbps", "bw",
                "slow_close_ms",
            ):
                canonical = {"dup": "duplicate", "bw": "bandwidth_kbps"}.get(key, key)
                fields[canonical] = float(value)
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        if crashes:
            fields["crashes"] = tuple(crashes)
        return cls(**fields)

    def with_seed(self, seed: str) -> "FaultProfile":
        """The same plan under a different randomness seed (for sweeps)."""
        return replace(self, seed=seed)
