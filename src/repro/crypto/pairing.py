"""Optimal-ate pairing on BN curves.

``pairing(curve, P, Q)`` computes e(P, Q) for P in G1(Fp) and Q in G2 given
on the sextic twist over Fp2.  The implementation is the textbook optimal
ate for BN curves with positive parameter x:

    e(P, Q) = FE( f_{6x+2, Q}(P) * l_{T, pi(Q)}(P) * l_{T', -pi^2(Q)}(P) )

Line values are evaluated directly into the sparse (w^0, w^1, w^3) form and
folded with ``Fp12.mul_by_014``.  The final exponentiation splits into the
standard easy part and a hard part computed from the lambda-polynomial
decomposition

    (p^4 - p^2 + 1)/r = p^3 + lam2*p^2 + lam1*p + lam0

whose integer correctness is asserted at first use for every curve, so a
wrong hard part cannot fail silently.

``multi_pairing`` runs a *shared* Miller loop: all pairs walk the NAF
digits of 6x+2 together, their line functions folding into one running
Fp12 product, so the per-digit squaring ``f <- f^2`` is paid once for the
whole batch instead of once per pair — followed by a single shared final
exponentiation.  That, plus identity-pair short-circuiting, is what makes
batched ZK-EDB proof verification cheap: verifying k proofs costs
``shared squarings + k line evaluations + 1 final exponentiation`` rather
than k full pairings.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

from ..obs import default_registry
from .bn import BNCurve
from .curve import G1Point, G2Point
from .tower import Fp2, Fp12

__all__ = [
    "pairing",
    "miller_loop",
    "final_exponentiation",
    "multi_pairing",
    "multi_miller_loop",
    "pairing_product_is_one",
]


def _naf(k: int) -> list[int]:
    digits = []
    while k:
        if k & 1:
            d = 2 - (k % 4)
            k -= d
        else:
            d = 0
        digits.append(d)
        k >>= 1
    return digits


@lru_cache(maxsize=8)
def _loop_digits(loop_count: int) -> tuple[int, ...]:
    """NAF digits of 6x+2, most significant first, leading digit dropped."""
    digits = _naf(loop_count)
    digits.reverse()
    return tuple(digits[1:])


def _line_double(t: G2Point, xp: int, yp: int, ctx) -> tuple[G2Point, Fp2, Fp2, Fp2]:
    """Tangent line at T evaluated at P; returns (2T, a0, b0, b1)."""
    x1, y1 = t
    lam = x1.square().scale(3) * (y1 + y1).inverse()
    x3 = lam.square() - x1 - x1
    y3 = lam * (x1 - x3) - y1
    a0 = Fp2(ctx, yp, 0)
    b0 = lam.scale(-xp % ctx.p)
    b1 = lam * x1 - y1
    return (x3, y3), a0, b0, b1


def _line_add(
    t: G2Point, q: G2Point, xp: int, yp: int, ctx
) -> tuple[G2Point, Fp2, Fp2, Fp2] | None:
    """Chord line through T and Q evaluated at P; returns (T+Q, a0, b0, b1).

    Returns None for the degenerate vertical case (the line value then lies
    in a proper subfield and is killed by the final exponentiation, so the
    caller simply skips the multiplication).
    """
    x1, y1 = t
    x2, y2 = q
    if x1 == x2:
        if (y1 + y2).is_zero():
            return None
        return _line_double(t, xp, yp, ctx)
    lam = (y2 - y1) * (x2 - x1).inverse()
    x3 = lam.square() - x1 - x2
    y3 = lam * (x1 - x3) - y1
    a0 = Fp2(ctx, yp, 0)
    b0 = lam.scale(-xp % ctx.p)
    b1 = lam * x1 - y1
    return (x3, y3), a0, b0, b1


def miller_loop(curve: BNCurve, p_point: G1Point, q_point: G2Point) -> Fp12:
    """The un-exponentiated optimal-ate Miller function value."""
    ctx = curve.tower
    if p_point is None or q_point is None:
        return Fp12.one(ctx)
    xp, yp = p_point
    q = q_point
    neg_q = curve.g2.neg(q)
    t = q
    f = Fp12.one(ctx)
    for digit in _loop_digits(curve.loop_count):
        f = f.square()
        t, a0, b0, b1 = _line_double(t, xp, yp, ctx)
        f = f.mul_by_014(a0, b0, b1)
        if digit:
            addend = q if digit == 1 else neg_q
            step = _line_add(t, addend, xp, yp, ctx)
            if step is not None:
                t, a0, b0, b1 = step
                f = f.mul_by_014(a0, b0, b1)
    # The two extra optimal-ate lines with the Frobenius images of Q.
    q1 = curve.g2.frobenius(q)
    q2 = curve.g2.neg(curve.g2.frobenius(q1))
    step = _line_add(t, q1, xp, yp, ctx)
    if step is not None:
        t, a0, b0, b1 = step
        f = f.mul_by_014(a0, b0, b1)
    step = _line_add(t, q2, xp, yp, ctx)
    if step is not None:
        _, a0, b0, b1 = step
        f = f.mul_by_014(a0, b0, b1)
    return f


@lru_cache(maxsize=8)
def _hard_part_lambdas(x: int, p: int, r: int) -> tuple[int, int, int]:
    """(lam2, lam1, lam0) with (p^4-p^2+1)/r == p^3 + lam2 p^2 + lam1 p + lam0.

    The decomposition is asserted as an integer identity, which proves the
    hard part of the final exponentiation correct for this curve.
    """
    lam2 = 6 * x * x + 1
    lam1 = -36 * x**3 - 18 * x**2 - 12 * x + 1
    lam0 = -36 * x**3 - 30 * x**2 - 18 * x - 2
    target, rem = divmod(p**4 - p**2 + 1, r)
    if rem != 0:
        raise AssertionError("r does not divide p^4 - p^2 + 1")
    if p**3 + lam2 * p**2 + lam1 * p + lam0 != target:
        raise AssertionError("hard-part lambda decomposition failed")
    return lam2, lam1, lam0


def final_exponentiation(curve: BNCurve, f: Fp12) -> Fp12:
    """Map a Miller value to the order-r subgroup of Fp12*."""
    # Easy part: f^((p^6 - 1)(p^2 + 1)).
    f = f.conjugate() * f.inverse()
    f = f.frobenius(2) * f
    # Hard part via the lambda decomposition; all elements are cyclotomic
    # from here on, so inversion is conjugation.
    x = curve.x
    lam2, lam1, lam0 = _hard_part_lambdas(x, curve.p, curve.r)
    fx = f.cyclotomic_pow(x)
    fx2 = fx.cyclotomic_pow(x)
    fx3 = fx2.cyclotomic_pow(x)

    def power(base_x: Fp12, base_x2: Fp12, base_x3: Fp12, base_1: Fp12,
              c3: int, c2: int, c1: int, c0: int) -> Fp12:
        out = base_x3.cyclotomic_pow(c3)
        out = out * base_x2.cyclotomic_pow(c2)
        out = out * base_x.cyclotomic_pow(c1)
        out = out * base_1.cyclotomic_pow(c0)
        return out

    # f^lam2 = f^(6x^2 + 1), f^lam1, f^lam0 expressed in the x-power basis.
    f_lam2 = power(fx, fx2, fx3, f, 0, 6, 0, 1)
    f_lam1 = power(fx, fx2, fx3, f, -36, -18, -12, 1)
    f_lam0 = power(fx, fx2, fx3, f, -36, -30, -18, -2)
    result = f.frobenius(3)
    result = result * f_lam2.frobenius(2)
    result = result * f_lam1.frobenius(1)
    result = result * f_lam0
    return result


def pairing(curve: BNCurve, p_point: G1Point, q_point: G2Point) -> Fp12:
    """The reduced optimal-ate pairing e(P, Q)."""
    return final_exponentiation(curve, miller_loop(curve, p_point, q_point))


def multi_miller_loop(
    curve: BNCurve, pairs: Sequence[tuple[G1Point, G2Point]]
) -> Fp12:
    """Shared Miller loop: one digit walk, one running line product.

    Every live pair contributes its tangent/chord line values into a single
    accumulator ``f``; the per-digit squaring is shared across the batch.
    Identity pairs (``e(O, Q)``/``e(P, O)`` contribute 1) are skipped up
    front and surfaced through the ``pairing.shared_miller.identity_skipped``
    counter.
    """
    ctx = curve.tower
    live = [
        (p_point, q_point)
        for p_point, q_point in pairs
        if p_point is not None and q_point is not None
    ]
    registry = default_registry()
    skipped = len(pairs) - len(live)
    if skipped:
        registry.counter("pairing.shared_miller.identity_skipped").inc(skipped)
    if not live:
        return Fp12.one(ctx)
    registry.counter("pairing.shared_miller.calls").inc()
    # A lone pair squares per digit anyway; "folded" counts the pairs whose
    # squarings the shared walk absorbed.
    registry.counter("pairing.shared_miller.pairs_folded").inc(len(live) - 1)
    g2 = curve.g2
    # Per-pair state: (T, Q, -Q, xp, yp); T walks the loop, Q stays fixed.
    states = [
        [q_point, q_point, g2.neg(q_point), p_point[0], p_point[1]]
        for p_point, q_point in live
    ]
    f = Fp12.one(ctx)
    for digit in _loop_digits(curve.loop_count):
        f = f.square()
        for state in states:
            t, q, neg_q, xp, yp = state
            t, a0, b0, b1 = _line_double(t, xp, yp, ctx)
            f = f.mul_by_014(a0, b0, b1)
            if digit:
                addend = q if digit == 1 else neg_q
                step = _line_add(t, addend, xp, yp, ctx)
                if step is not None:
                    t, a0, b0, b1 = step
                    f = f.mul_by_014(a0, b0, b1)
            state[0] = t
    # The two extra optimal-ate lines with the Frobenius images of each Q.
    for state in states:
        t, q, _neg_q, xp, yp = state
        q1 = g2.frobenius(q)
        q2 = g2.neg(g2.frobenius(q1))
        step = _line_add(t, q1, xp, yp, ctx)
        if step is not None:
            t, a0, b0, b1 = step
            f = f.mul_by_014(a0, b0, b1)
        step = _line_add(t, q2, xp, yp, ctx)
        if step is not None:
            _, a0, b0, b1 = step
            f = f.mul_by_014(a0, b0, b1)
    return f


def multi_pairing(
    curve: BNCurve, pairs: Sequence[tuple[G1Point, G2Point]]
) -> Fp12:
    """Product of pairings: one shared Miller loop, one final exponentiation."""
    return final_exponentiation(curve, multi_miller_loop(curve, pairs))


def pairing_product_is_one(
    curve: BNCurve, pairs: Iterable[tuple[G1Point, G2Point]]
) -> bool:
    """True iff the product of e(P_i, Q_i) over all pairs equals 1."""
    return multi_pairing(curve, list(pairs)).is_one()
