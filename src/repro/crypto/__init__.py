"""Pairing-based cryptography substrate built from scratch.

Layers, bottom to top: number theory -> prime fields -> the Fp2/Fp6/Fp12
tower -> BN curve groups G1/G2 -> the optimal-ate pairing.  Plus the
cross-cutting helpers every layer shares: hashing, canonical serialization,
deterministic randomness, and Schnorr signatures (used by the baseline POC
scheme of the paper's Section II.C).
"""

from .bn import BNCurve, bn254, derive_bn, toy_bn
from .pairing import (
    final_exponentiation,
    miller_loop,
    multi_pairing,
    pairing,
    pairing_product_is_one,
)
from .rng import DeterministicRng
from .signatures import Signature, SigningKey, VerifyKey, generate_keypair

__all__ = [
    "BNCurve",
    "bn254",
    "toy_bn",
    "derive_bn",
    "pairing",
    "miller_loop",
    "final_exponentiation",
    "multi_pairing",
    "pairing_product_is_one",
    "DeterministicRng",
    "SigningKey",
    "VerifyKey",
    "Signature",
    "generate_keypair",
]
