"""Schnorr signatures over G1.

This is the substrate for the signature-list POC baseline of Section II.C
("design challenge"): the strawman scheme a participant could use instead
of ZK-EDB, which DE-Sword shows is insufficient against dishonest POC
construction.  Signing is deterministic (RFC-6979 style nonce derivation)
so protocol runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bn import BNCurve
from .curve import G1Point
from .hashing import hash_parts, hash_to_int
from .rng import DeterministicRng
from .serialize import encode_scalar, g1_to_bytes

__all__ = ["SigningKey", "VerifyKey", "Signature", "generate_keypair"]


@dataclass(frozen=True)
class Signature:
    """A Schnorr signature (challenge, response)."""

    challenge: int
    response: int

    def to_bytes(self, curve: BNCurve) -> bytes:
        return encode_scalar(curve, self.challenge) + encode_scalar(
            curve, self.response
        )


@dataclass(frozen=True)
class VerifyKey:
    """A Schnorr public key."""

    curve: BNCurve
    point: G1Point

    def verify(self, message: bytes, signature: Signature) -> bool:
        g1 = self.curve.g1
        # R' = s*G + c*PK; valid iff c == H(R' || PK || m).
        r_point = g1.add(
            g1.mul_gen(signature.response),
            g1.mul(self.point, signature.challenge),
        )
        expected = _challenge(self.curve, r_point, self.point, message)
        return expected == signature.challenge

    def to_bytes(self) -> bytes:
        return g1_to_bytes(self.curve, self.point)


@dataclass(frozen=True)
class SigningKey:
    """A Schnorr private key with deterministic nonces."""

    curve: BNCurve
    secret: int

    @property
    def verify_key(self) -> VerifyKey:
        return VerifyKey(self.curve, self.curve.g1.mul_gen(self.secret))

    def sign(self, message: bytes) -> Signature:
        curve = self.curve
        nonce = hash_to_int(
            b"repro/schnorr-nonce",
            encode_scalar(curve, self.secret) + message,
            curve.r - 1,
        ) + 1
        r_point = curve.g1.mul_gen(nonce)
        challenge = _challenge(curve, r_point, self.verify_key.point, message)
        response = (nonce - challenge * self.secret) % curve.r
        return Signature(challenge, response)


def _challenge(curve: BNCurve, r_point: G1Point, pk: G1Point, message: bytes) -> int:
    digest = hash_parts(
        b"repro/schnorr-challenge",
        g1_to_bytes(curve, r_point),
        g1_to_bytes(curve, pk),
        message,
    )
    return hash_to_int(b"repro/schnorr-reduce", digest, curve.r)


def generate_keypair(curve: BNCurve, rng: DeterministicRng) -> SigningKey:
    """A fresh signing key from the supplied randomness stream."""
    return SigningKey(curve, curve.random_scalar(rng))
