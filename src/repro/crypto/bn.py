"""Barreto-Naehrig curve construction, parameterised by the BN integer x.

A BN curve is fully determined by one integer parameter ``x``:

* ``p(x) = 36x^4 + 36x^3 + 24x^2 + 6x + 1``  (base field)
* ``r(x) = 36x^4 + 36x^3 + 18x^2 + 6x + 1``  (prime group order)
* ``t(x) = 6x^2 + 1``                         (Frobenius trace)

Two instances are provided:

* :func:`bn254` — the widely deployed alt_bn128 / BN254 curve (the class of
  curve the paper's jPBC deployment would use at ~128-bit security), with
  the standard generators hard-coded.
* :func:`toy_bn` — a small curve derived generically from the first suitable
  ``x >= 2^7``, exercising the exact same code paths at test speed.

Both carry everything the pairing and the commitment schemes need: the
tower context, G1, G2 (on the sextic twist), and the optimal-ate loop
constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import isqrt

from .curve import G1Group, G2Group, G2Point
from .field import PrimeField
from .ntheory import is_probable_prime, sqrt_mod
from .tower import Fp2, TowerContext

__all__ = ["BNCurve", "bn254", "toy_bn", "derive_bn"]


def _bn_p(x: int) -> int:
    return 36 * x**4 + 36 * x**3 + 24 * x**2 + 6 * x + 1


def _bn_r(x: int) -> int:
    return 36 * x**4 + 36 * x**3 + 18 * x**2 + 6 * x + 1


def _bn_t(x: int) -> int:
    return 6 * x**2 + 1


@dataclass(frozen=True)
class BNCurve:
    """A fully instantiated BN pairing context."""

    name: str
    x: int
    p: int
    r: int
    t: int
    fp: PrimeField
    tower: TowerContext
    g1: G1Group
    g2: G2Group
    loop_count: int  # 6x + 2, the optimal-ate Miller loop constant

    @property
    def scalar_bits(self) -> int:
        return self.r.bit_length()

    def random_scalar(self, rng) -> int:
        """A uniform non-zero scalar in [1, r)."""
        return rng.randrange(1, self.r)

    def hash_to_g1(self, data: bytes):
        """Try-and-increment hash onto G1 (cofactor 1 for BN curves)."""
        from .hashing import hash_to_int

        counter = 0
        while True:
            x = hash_to_int(b"repro/hash-to-g1", data + counter.to_bytes(4, "big"), self.p)
            rhs = (x * x * x + self.g1.b) % self.p
            y = sqrt_mod(rhs, self.p)
            if y is not None:
                # Normalise to the lexicographically smaller root for
                # determinism across runs.
                y = min(y, self.p - y)
                return (x, y)
            counter += 1


def _twist_order_candidates(p: int, t: int) -> list[int]:
    """Possible orders of the sextic twists of E over Fp2."""
    t2 = t * t - 2 * p
    f2_sq, rem = divmod(4 * p * p - t2 * t2, 3)
    if rem:
        return [p * p + 1 - t2, p * p + 1 + t2]
    f2 = isqrt(f2_sq)
    if f2 * f2 != f2_sq:
        return [p * p + 1 - t2, p * p + 1 + t2]
    candidates = {p * p + 1 - t2, p * p + 1 + t2}
    for num in (3 * f2 + t2, 3 * f2 - t2):
        if num % 2 == 0:
            half = num // 2
            candidates.add(p * p + 1 - half)
            candidates.add(p * p + 1 + half)
    return sorted(candidates)


def _sextic_nonresidues(ctx: TowerContext, limit: int = 10_000):
    """Yield elements a + u of Fp2 that are neither squares nor cubes."""
    p = ctx.p
    exponent_sq = (p * p - 1) // 2
    exponent_cu = (p * p - 1) // 3
    one = Fp2.one(ctx)
    for a in range(1, limit):
        candidate = Fp2(ctx, a, 1)
        if candidate.pow(exponent_sq) == one:
            continue
        if candidate.pow(exponent_cu) == one:
            continue
        yield candidate


def _twist_point_search(
    ctx: TowerContext, b_twist: Fp2, start: int = 1
) -> tuple[Fp2, Fp2]:
    """First affine point on y^2 = x^3 + b_twist with small integer x-part."""
    for a in range(start, start + 10_000):
        for bcoef in range(0, 4):
            x = Fp2(ctx, a, bcoef)
            rhs = x.square() * x + b_twist
            y = rhs.sqrt()
            if y is not None:
                return (x, y)
    raise RuntimeError("no point found on the twist")


def derive_bn(x: int, name: str | None = None) -> BNCurve:
    """Instantiate a BN curve for the given parameter ``x``.

    ``x`` must be odd (so p = 3 mod 4) and positive, and p(x)/r(x) must be
    prime.  The curve equation constant b, the twist, and the generators are
    derived generically, which keeps the toy and production curves on the
    same code path.
    """
    if x <= 0 or x % 2 == 0:
        raise ValueError("BN parameter x must be positive and odd")
    p = _bn_p(x)
    r = _bn_r(x)
    t = _bn_t(x)
    if not (is_probable_prime(p) and is_probable_prime(r)):
        raise ValueError(f"BN parameter x={x} does not give prime p and r")
    if p + 1 - t != r:
        raise AssertionError("BN identity p + 1 - t == r violated")
    fp = PrimeField(p)

    # Curve constant b: first b such that (1, y) is a point of order r.
    # The order check must bypass G1Group.mul, which reduces scalars modulo
    # the *claimed* order and would therefore accept any b vacuously.
    g1 = None
    for b in range(1, 10_000):
        rhs = (1 + b) % p
        y = sqrt_mod(rhs, p)
        if y is None:
            continue
        candidate = G1Group(p, b, r, (1, min(y, p - y)))
        if _g1_mul_unchecked(candidate, candidate.generator, r) is None:
            g1 = candidate
            break
    if g1 is None:
        raise RuntimeError("could not find curve constant b")

    # TowerContext needs xi at construction time, but finding xi needs Fp2
    # arithmetic; bootstrap a bare context (only .p is used by Fp2 mul/pow)
    # and rebuild the real context once the non-residue is known.
    bootstrap = TowerContext.__new__(TowerContext)
    bootstrap.p = p
    bootstrap.xi = None  # type: ignore[assignment]

    # Among the sextic non-residues, only one of the two classes of
    # (Fp2)*/((Fp2)*)^6 gives a twist whose order-r points lie in the
    # Frobenius eigenspace of eigenvalue p — the property the optimal-ate
    # Miller loop needs.  For an SNR xi, xi^5 lies in the other class, so
    # trying both covers both sextic twists.
    built = None
    for xi_candidate in _sextic_nonresidues(bootstrap):
        for xi in (xi_candidate, xi_candidate.pow(5)):
            built = _try_build_g2(p, r, t, g1.b, (xi.c0, xi.c1))
            if built is not None:
                break
        if built is not None:
            break
    if built is None:
        raise RuntimeError("no sextic non-residue yields a p-eigenvalue twist")
    ctx, g2 = built

    return BNCurve(
        name=name or f"bn-x{x}",
        x=x,
        p=p,
        r=r,
        t=t,
        fp=fp,
        tower=ctx,
        g1=g1,
        g2=g2,
        loop_count=6 * x + 2,
    )


def _try_build_g2(
    p: int, r: int, t: int, b: int, xi: tuple[int, int]
) -> tuple[TowerContext, G2Group] | None:
    """Build G2 on the D-type twist for one xi; None if the twist is wrong.

    Wrong means either no order-r subgroup exists on y^2 = x^3 + b/xi, or
    its points fall in the Frobenius eigenspace of eigenvalue 1/p instead
    of p (the other sextic-twist class).
    """
    ctx = TowerContext(p, xi)
    b_twist = Fp2.from_int(ctx, b) * ctx.xi.inverse()
    try:
        point = _twist_point_search(ctx, b_twist)
    except RuntimeError:
        return None
    shell = G2Group.__new__(G2Group)
    shell.ctx = ctx
    shell.b = b_twist
    shell.order = r
    shell.generator = point
    shell.cofactor = 1

    order = None
    for candidate in _twist_order_candidates(p, t):
        if candidate % r != 0:
            continue
        if _g2_mul_unchecked(shell, point, candidate) is None:
            order = candidate
            break
    if order is None:
        return None
    cofactor = order // r

    generator: G2Point = None
    attempt = 1
    while generator is None and attempt < 32:
        generator = _g2_mul_unchecked(shell, point, cofactor)
        if generator is None:
            point = _twist_point_search(ctx, b_twist, start=attempt + 1)
            attempt += 1
    if generator is None:
        return None
    if _g2_mul_unchecked(shell, generator, r) is not None:
        return None
    g2 = G2Group(ctx, b_twist, r, generator, cofactor)
    if g2.frobenius(generator) != _g2_mul_unchecked(g2, generator, p % r):
        return None
    return ctx, g2


def _g2_mul_unchecked(group: G2Group, point: G2Point, scalar: int) -> G2Point:
    """Double-and-add without the subgroup-order reduction of G2Group.mul."""
    result: G2Point = None
    addend = point
    while scalar:
        if scalar & 1:
            result = group.add(result, addend)
        addend = group.double(addend)
        scalar >>= 1
    return result


def _g1_mul_unchecked(group: G1Group, point, scalar: int):
    """Double-and-add without the order reduction of G1Group.mul."""
    result = None
    addend = point
    while scalar:
        if scalar & 1:
            result = group.add(result, addend)
        addend = group.double(addend)
        scalar >>= 1
    return result


# -- alt_bn128 / BN254 -------------------------------------------------------

_BN254_X = 4965661367192848881
_BN254_P = 21888242871839275222246405745257275088696311157297823662689037894645226208583
_BN254_R = 21888242871839275222246405745257275088548364400416034343698204186575808495617
_BN254_G2_X0 = 10857046999023057135944570762232829481370756359578518086990519993285655852781
_BN254_G2_X1 = 11559732032986387107991004021392285783925812861821192530917403151452391805634
_BN254_G2_Y0 = 8495653923123431417604973247489272438418190587263600148770280649306958101930
_BN254_G2_Y1 = 4082367875863433681332203403145435568316851327593401208105741076214120093531


@lru_cache(maxsize=1)
def bn254() -> BNCurve:
    """The alt_bn128 curve (EIP-196 parameters) with standard generators."""
    x = _BN254_X
    p, r, t = _bn_p(x), _bn_r(x), _bn_t(x)
    if p != _BN254_P or r != _BN254_R:
        raise AssertionError("BN254 constants disagree with the BN polynomials")
    ctx = TowerContext(p, (9, 1))
    g1 = G1Group(p, 3, r, (1, 2))
    b_twist = Fp2.from_int(ctx, 3) * ctx.xi.inverse()
    generator = (
        Fp2(ctx, _BN254_G2_X0, _BN254_G2_X1),
        Fp2(ctx, _BN254_G2_Y0, _BN254_G2_Y1),
    )
    order = None
    for candidate in _twist_order_candidates(p, t):
        if candidate % r == 0:
            order = candidate
            break
    cofactor = (order // r) if order else 1
    g2 = G2Group(ctx, b_twist, r, generator, cofactor)
    if g2.frobenius(generator) != _g2_mul_unchecked(g2, generator, p % r):
        raise AssertionError("BN254 G2 generator fails the p-eigenvalue check")
    return BNCurve(
        name="bn254",
        x=x,
        p=p,
        r=r,
        t=t,
        fp=PrimeField(p),
        tower=ctx,
        g1=g1,
        g2=g2,
        loop_count=6 * x + 2,
    )


@lru_cache(maxsize=4)
def toy_bn(min_x: int = 129) -> BNCurve:
    """A small BN curve for fast tests, derived from the first valid x."""
    x = min_x if min_x % 2 == 1 else min_x + 1
    while True:
        p = _bn_p(x)
        if is_probable_prime(p) and is_probable_prime(_bn_r(x)):
            try:
                return derive_bn(x, name=f"toy-bn-x{x}")
            except (ValueError, RuntimeError):
                pass
        x += 2
