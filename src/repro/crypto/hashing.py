"""Domain-separated hashing helpers.

All hashing in the repository goes through these functions so that every
use site carries an explicit domain-separation tag, which keeps transcripts
of different protocol roles from colliding.
"""

from __future__ import annotations

import hashlib

__all__ = ["hash_bytes", "hash_to_int", "hash_parts"]


def hash_bytes(domain: bytes, data: bytes) -> bytes:
    """SHA-256 of the domain-separated payload."""
    h = hashlib.sha256()
    h.update(len(domain).to_bytes(2, "big"))
    h.update(domain)
    h.update(data)
    return h.digest()


def hash_to_int(domain: bytes, data: bytes, modulus: int) -> int:
    """Hash into [0, modulus) with negligible bias.

    Expands the digest until it has at least 128 bits of slack over the
    modulus before reducing.
    """
    if modulus <= 1:
        raise ValueError("modulus must be > 1")
    need_bits = modulus.bit_length() + 128
    blocks = (need_bits + 255) // 256
    material = b"".join(
        hash_bytes(domain + b"/%d" % i, data) for i in range(blocks)
    )
    return int.from_bytes(material, "big") % modulus


def hash_parts(domain: bytes, *parts: bytes) -> bytes:
    """Hash a sequence of length-prefixed byte strings (injectively)."""
    h = hashlib.sha256()
    h.update(len(domain).to_bytes(2, "big"))
    h.update(domain)
    for part in parts:
        h.update(len(part).to_bytes(4, "big"))
        h.update(part)
    return h.digest()
