"""Elementary number theory used by the pairing substrate.

Everything here works on plain Python integers.  The functions are small and
deterministic so the higher layers (fields, curves, BN parameter derivation)
can rely on them without pulling in external dependencies.
"""

from __future__ import annotations

__all__ = [
    "egcd",
    "inverse_mod",
    "is_probable_prime",
    "legendre_symbol",
    "sqrt_mod",
    "next_probable_prime",
    "crt_pair",
]

# Deterministic Miller-Rabin witness sets.  The first set is proven complete
# for n < 3.3e24; for larger n we add more witnesses which makes the test
# probabilistic with error far below 2^-128 for random inputs, which is more
# than enough for parameter derivation (BN primes are additionally validated
# by known constants).
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_MR_EXTRA_WITNESSES = (41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97)


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return (g, x, y) with a*x + b*y == g == gcd(a, b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def inverse_mod(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m``.

    Raises ``ZeroDivisionError`` when ``a`` is not invertible, mirroring the
    behaviour of ``pow(a, -1, m)`` but kept explicit for readability at call
    sites that predate that builtin.
    """
    return pow(a, -1, m)


def is_probable_prime(n: int) -> bool:
    """Miller-Rabin primality test with deterministic witnesses.

    Deterministic (proven) for n < 3.3e24; overwhelmingly accurate beyond.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    witnesses = _MR_WITNESSES
    if n >= 3_317_044_064_679_887_385_961_981:
        witnesses = _MR_WITNESSES + _MR_EXTRA_WITNESSES
    for a in witnesses:
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_probable_prime(n: int) -> int:
    """Smallest probable prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate


def legendre_symbol(a: int, p: int) -> int:
    """Legendre symbol (a|p) for odd prime p: 1, -1, or 0."""
    a %= p
    if a == 0:
        return 0
    ls = pow(a, (p - 1) // 2, p)
    return -1 if ls == p - 1 else 1


def sqrt_mod(a: int, p: int) -> int | None:
    """A square root of ``a`` modulo odd prime ``p``, or None if none exists.

    Uses the p % 4 == 3 shortcut when available, Tonelli-Shanks otherwise.
    Returns the root ``r`` with no normalisation promise beyond r*r == a.
    """
    a %= p
    if a == 0:
        return 0
    if legendre_symbol(a, p) != 1:
        return None
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Tonelli-Shanks.
    q = p - 1
    s = 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while legendre_symbol(z, p) != -1:
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    r = pow(a, (q + 1) // 2, p)
    while t != 1:
        # Find least i, 0 < i < m, with t^(2^i) == 1.
        i = 0
        t2i = t
        while t2i != 1:
            t2i = t2i * t2i % p
            i += 1
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = b * b % p
        t = t * c % p
        r = r * b % p
    return r


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Chinese remainder for two coprime moduli; returns x mod m1*m2."""
    g, u, _ = egcd(m1, m2)
    if g != 1:
        raise ValueError("moduli must be coprime")
    return (r1 + (r2 - r1) * u % m2 * m1) % (m1 * m2)
