"""Short-Weierstrass curve groups G1 (over Fp) and G2 (over Fp2).

G1 points are ``(x, y)`` tuples of plain integers with ``None`` as the point
at infinity; the group object carries the modulus.  Scalar multiplication
uses Jacobian coordinates with a 4-bit window internally, and two
multi-scalar multiplication algorithms back the commitment schemes'
multi-exponentiations:

* **Straus** interleaved 4-bit windows — best for few points, and for
  recurring (CRS) points whose 0..15 multiples the engine cache keeps;
* **Pippenger** bucket method with signed window digits — best for large
  one-shot inputs, where per-point tables would dominate the cost.

:meth:`G1Group.multi_mul` selects between them by input size (see
``PIPPENGER_MIN_POINTS``).  All table construction goes through
:meth:`G1Group.batch_normalize`, Montgomery's simultaneous-inversion
trick, so a batch of Jacobian→affine conversions costs one field
inversion instead of one per point.

G2 points are ``(x, y)`` tuples of :class:`~repro.crypto.tower.Fp2` elements
with affine arithmetic; G2 is only used for CRS material and pairings, never
in a per-product hot loop.
"""

from __future__ import annotations

import os
from math import isqrt
from typing import Callable, Iterable, Optional, Sequence

from ..obs import default_registry
from .field import mpz
from .tower import Fp2, TowerContext

__all__ = [
    "G1Group",
    "G2Group",
    "G1Point",
    "G2Point",
    "FixedBaseWindow",
    "MsmBasis",
    "set_fixed_base_provider",
    "set_glv_enabled",
    "glv_enabled",
    "PIPPENGER_MIN_POINTS",
    "PIPPENGER_MIN_POINTS_CACHED",
]

# Below this many (nonzero) terms, Straus with ad-hoc tables beats the
# bucket method; above it, Pippenger's fewer windows win.  The cached
# threshold is higher because cached Straus tables remove the table-build
# cost that Pippenger avoids (crossover measured in benchmarks/, E9).
PIPPENGER_MIN_POINTS = 64
PIPPENGER_MIN_POINTS_CACHED = 192

G1Point = Optional[tuple[int, int]]
G2Point = Optional[tuple[Fp2, Fp2]]

# Installed by the engine layer (repro.engine.cache) so that all fixed-base
# window tables live in one process-wide, inspectable cache rather than in
# per-group private state.  Without a provider, groups build their own
# window lazily — same math, just not shared.
_FIXED_BASE_PROVIDER: Callable[["G1Group", tuple[int, int]], "FixedBaseWindow"] | None = None


def set_fixed_base_provider(
    provider: Callable[["G1Group", tuple[int, int]], "FixedBaseWindow"] | None,
) -> None:
    """Install the process-wide fixed-base table provider (engine cache)."""
    global _FIXED_BASE_PROVIDER
    _FIXED_BASE_PROVIDER = provider


# GLV scalar decomposition (see G1Group._glv_endo).  The plain
# double-and-add path is kept as the reference semantics; both produce the
# same group element, so this switch never changes bytes on the wire.
_GLV_ENABLED = os.environ.get("REPRO_GLV", "1") != "0"


def set_glv_enabled(enabled: bool) -> bool:
    """Toggle GLV-accelerated scalar multiplication; returns the previous setting."""
    global _GLV_ENABLED
    previous = _GLV_ENABLED
    _GLV_ENABLED = bool(enabled)
    return previous


def glv_enabled() -> bool:
    return _GLV_ENABLED


class GlvEndo:
    """GLV endomorphism data for a curve with j-invariant 0 (y^2 = x^3 + b).

    BN curves admit the efficient endomorphism ``phi(x, y) = (beta*x, y)``
    with ``beta`` a primitive cube root of unity mod p, acting on the
    prime-order subgroup as multiplication by ``lam`` (a cube root of unity
    mod r).  ``decompose(k)`` rewrites a full-width scalar as
    ``k1 + k2*lam (mod r)`` with ``|k1|, |k2| ~ sqrt(r)`` via the
    lattice-reduced basis, so one mult costs half the doublings.
    """

    __slots__ = ("beta", "lam", "order", "a1", "b1", "a2", "b2", "min_bits")

    def __init__(self, beta: int, lam: int, order: int):
        self.beta = beta
        self.lam = lam
        self.order = order
        self.a1, self.b1, self.a2, self.b2 = _glv_lattice_basis(order, lam)
        # Below roughly half-width there is nothing to split; the extra
        # table build would only add cost.
        self.min_bits = order.bit_length() // 2 + 8

    def decompose(self, k: int) -> tuple[int, int]:
        """Return (k1, k2), possibly negative, with k1 + k2*lam = k mod r."""
        n = self.order
        c1 = _round_div(self.b2 * k, n)
        c2 = _round_div(-self.b1 * k, n)
        k1 = k - c1 * self.a1 - c2 * self.a2
        k2 = -c1 * self.b1 - c2 * self.b2
        default_registry().counter("glv.decompositions").inc()
        return k1, k2


def _round_div(num: int, den: int) -> int:
    """Nearest integer to num/den for den > 0 (floor-based, exact halves up)."""
    return (2 * num + den) // (2 * den)


def _glv_lattice_basis(n: int, lam: int) -> tuple[int, int, int, int]:
    """Two short vectors (a1, b1), (a2, b2) of {(a, b) : a + b*lam = 0 mod n}.

    The classic partial extended-Euclid construction (Guide to ECC,
    Alg. 3.74): run the remainder sequence of (n, lam) until it drops below
    sqrt(n); the adjacent rows give vectors of norm O(sqrt(n)).
    """
    root = isqrt(n)
    rows = [(n, 0), (lam % n, 1)]  # (remainder, t-coefficient)
    while rows[-1][0] != 0:
        q = rows[-2][0] // rows[-1][0]
        rows.append((rows[-2][0] - q * rows[-1][0], rows[-2][1] - q * rows[-1][1]))
        if rows[-1][0] < root and rows[-2][0] >= root:
            break
    r_l1, t_l1 = rows[-1]
    a1, b1 = r_l1, -t_l1
    r_l, t_l = rows[-2]
    cand_a = (r_l, -t_l)
    if rows[-1][0] != 0:
        q = rows[-2][0] // rows[-1][0]
        r_l2 = rows[-2][0] - q * rows[-1][0]
        t_l2 = rows[-2][1] - q * rows[-1][1]
        if r_l2 * r_l2 + t_l2 * t_l2 < cand_a[0] * cand_a[0] + cand_a[1] * cand_a[1]:
            cand_a = (r_l2, -t_l2)
    a2, b2 = cand_a
    return a1, b1, a2, b2


def _naf(k: int) -> list[int]:
    """Non-adjacent form of k, least significant digit first."""
    digits = []
    while k:
        if k & 1:
            d = 2 - (k % 4)
            k -= d
        else:
            d = 0
        digits.append(d)
        k >>= 1
    return digits


def _signed_window_digits(k: int, width: int) -> list[int]:
    """Signed base-``2**width`` digits of k, least significant first.

    Digits lie in ``[-2**(width-1), 2**(width-1)]``, so the bucket method
    needs only half as many buckets as with unsigned digits (negative
    digits use the negated point, which is free in affine coordinates).
    """
    digits = []
    full = 1 << width
    half = full >> 1
    while k:
        d = k & (full - 1)
        k >>= width
        if d > half:
            d -= full
            k += 1
        digits.append(d)
    return digits


def _pippenger_window(n: int) -> int:
    """Bucket window width for an n-term MSM (~log2 n, signed digits)."""
    return max(2, min(12, n.bit_length() - 2))


class FixedBaseWindow:
    """Precomputed 4-bit windows for repeated scalar mults of one base.

    ``table[w][d] = d * 16^w * base``; ``table[0]`` doubles as the small
    0..15 multiples table that Straus multi-scalar multiplication needs, so
    one cached object serves both fixed-base mults and multi-exps over CRS
    points.  Instances are built and shared by the engine's precomputation
    cache; groups fall back to a private window when no engine is loaded.
    """

    __slots__ = ("group", "base", "table")

    def __init__(self, group: "G1Group", base: tuple[int, int]):
        self.group = group
        self.base = base
        windows = (group.order.bit_length() + 3) // 4
        # Window bases 16^w * base, then every row's 1..15 multiples, all in
        # Jacobian coordinates; two batched normalizations replace the
        # windows*15 per-point inversions of the naive affine construction.
        bases_jac: list[tuple[int, int, int]] = []
        cursor = (base[0], base[1], 1)
        for _ in range(windows):
            bases_jac.append(cursor)
            for _ in range(4):
                cursor = group._jac_double(cursor)
        bases = group.batch_normalize(bases_jac)
        rows_jac: list[tuple[int, int, int]] = []
        for window_base in bases:
            if window_base is None:  # unreachable for prime-order bases
                rows_jac.extend([(1, 1, 0)] * 15)
                continue
            entry = (window_base[0], window_base[1], 1)
            rows_jac.append(entry)
            for _ in range(14):
                entry = group._jac_add_affine(entry, window_base)
                rows_jac.append(entry)
        flat = group.batch_normalize(rows_jac)
        self.table = [
            [None] + flat[w * 15 : (w + 1) * 15] for w in range(windows)
        ]

    @property
    def small_table(self) -> list[G1Point]:
        """The 0..15 multiples of the base (Straus per-point table)."""
        return self.table[0]

    def mul(self, scalar: int) -> G1Point:
        group = self.group
        scalar %= group.order
        if scalar == 0:
            return None
        acc = (1, 1, 0)
        window = 0
        while scalar:
            digit = scalar & 0xF
            if digit:
                acc = group._jac_add_affine(acc, self.table[window][digit])
            scalar >>= 4
            window += 1
        return group._from_jacobian(acc)


class MsmBasis:
    """Precomputed per-point state for Pippenger MSMs over a fixed basis.

    The bucket method needs each point's negation once per signed-digit
    window; for recurring bases (the qTMC CRS powers) the engine cache
    builds this object once and hands its ``negs`` to
    :meth:`G1Group.multi_mul_pippenger` on every call.
    """

    __slots__ = ("group", "points", "negs")

    def __init__(self, group: "G1Group", points: Sequence[G1Point]):
        self.group = group
        self.points = tuple(points)
        self.negs = tuple(
            None if pt is None else group.neg(pt) for pt in points
        )


class G1Group:
    """The prime-order group E(Fp): y^2 = x^3 + b."""

    __slots__ = ("p", "b", "order", "generator", "_gen_window", "_endo")

    def __init__(self, p: int, b: int, order: int, generator: tuple[int, int]):
        # The modulus goes through the integer backend so every `% p` in the
        # Jacobian formulas runs GMP when gmpy2 is available.
        self.p = mpz(p)
        self.b = b % p
        self.order = order
        self.generator = generator
        self._gen_window: FixedBaseWindow | None = None
        self._endo: GlvEndo | None | bool = False  # False = not yet derived
        if not self.is_on_curve(generator):
            raise ValueError("generator is not on the curve")

    # -- predicates ---------------------------------------------------------

    def is_on_curve(self, point: G1Point) -> bool:
        if point is None:
            return True
        x, y = point
        return (y * y - (x * x * x + self.b)) % self.p == 0

    def is_identity(self, point: G1Point) -> bool:
        return point is None

    def in_subgroup(self, point: G1Point) -> bool:
        return self.is_on_curve(point) and self.mul(point, self.order) is None

    # -- affine arithmetic --------------------------------------------------

    def neg(self, point: G1Point) -> G1Point:
        if point is None:
            return None
        x, y = point
        return (x, -y % self.p)

    def add(self, a: G1Point, b: G1Point) -> G1Point:
        if a is None:
            return b
        if b is None:
            return a
        p = self.p
        x1, y1 = a
        x2, y2 = b
        if x1 == x2:
            if (y1 + y2) % p == 0:
                return None
            return self.double(a)
        lam = (y2 - y1) * pow(x2 - x1, -1, p) % p
        x3 = (lam * lam - x1 - x2) % p
        y3 = (lam * (x1 - x3) - y1) % p
        return (x3, y3)

    def double(self, a: G1Point) -> G1Point:
        if a is None:
            return None
        p = self.p
        x1, y1 = a
        if y1 == 0:
            return None
        lam = 3 * x1 * x1 * pow(2 * y1, -1, p) % p
        x3 = (lam * lam - 2 * x1) % p
        y3 = (lam * (x1 - x3) - y1) % p
        return (x3, y3)

    # -- Jacobian internals -------------------------------------------------

    def _to_jacobian(self, point: G1Point) -> tuple[int, int, int]:
        if point is None:
            return (1, 1, 0)
        return (point[0], point[1], 1)

    def _from_jacobian(self, jac: tuple[int, int, int]) -> G1Point:
        x, y, z = jac
        if z == 0:
            return None
        p = self.p
        z_inv = pow(z, -1, p)
        z_inv2 = z_inv * z_inv % p
        return (x * z_inv2 % p, y * z_inv2 * z_inv % p)

    def _jac_double(self, jac: tuple[int, int, int]) -> tuple[int, int, int]:
        x, y, z = jac
        if z == 0 or y == 0:
            return (1, 1, 0)
        p = self.p
        a = x * x % p
        b = y * y % p
        c = b * b % p
        d = 2 * ((x + b) * (x + b) - a - c) % p
        e = 3 * a % p
        f = e * e % p
        x3 = (f - 2 * d) % p
        y3 = (e * (d - x3) - 8 * c) % p
        z3 = 2 * y * z % p
        return (x3, y3, z3)

    def _jac_add(
        self, a: tuple[int, int, int], b: tuple[int, int, int]
    ) -> tuple[int, int, int]:
        if a[2] == 0:
            return b
        if b[2] == 0:
            return a
        p = self.p
        x1, y1, z1 = a
        x2, y2, z2 = b
        z1z1 = z1 * z1 % p
        z2z2 = z2 * z2 % p
        u1 = x1 * z2z2 % p
        u2 = x2 * z1z1 % p
        s1 = y1 * z2 * z2z2 % p
        s2 = y2 * z1 * z1z1 % p
        if u1 == u2:
            if s1 != s2:
                return (1, 1, 0)
            return self._jac_double(a)
        h = (u2 - u1) % p
        i = 4 * h * h % p
        j = h * i % p
        r = 2 * (s2 - s1) % p
        v = u1 * i % p
        x3 = (r * r - j - 2 * v) % p
        y3 = (r * (v - x3) - 2 * s1 * j) % p
        z3 = 2 * h * z1 * z2 % p
        return (x3, y3, z3)

    def _jac_add_affine(
        self, a: tuple[int, int, int], b: tuple[int, int]
    ) -> tuple[int, int, int]:
        """Mixed addition when b has Z = 1."""
        if a[2] == 0:
            return (b[0], b[1], 1)
        p = self.p
        x1, y1, z1 = a
        x2, y2 = b
        z1z1 = z1 * z1 % p
        u2 = x2 * z1z1 % p
        s2 = y2 * z1 * z1z1 % p
        if x1 == u2:
            if (y1 + s2) % p == 0:
                return (1, 1, 0)
            return self._jac_double(a)
        h = (u2 - x1) % p
        hh = h * h % p
        i = 4 * hh % p
        j = h * i % p
        r = 2 * (s2 - y1) % p
        v = x1 * i % p
        x3 = (r * r - j - 2 * v) % p
        y3 = (r * (v - x3) - 2 * y1 * j) % p
        z3 = 2 * z1 * h % p
        return (x3, y3, z3)

    # -- batched coordinate conversion ---------------------------------------

    def batch_normalize(
        self, jacs: Sequence[tuple[int, int, int]]
    ) -> list[G1Point]:
        """Jacobian → affine for a whole batch with one field inversion.

        Montgomery's trick: multiply all Z coordinates together, invert the
        product once, then peel per-point inverses off with two
        multiplications each.  Points at infinity (Z = 0) come back as
        ``None`` and do not participate in the product.
        """
        p = self.p
        result: list[G1Point] = [None] * len(jacs)
        indices: list[int] = []
        zs: list[int] = []
        for i, (_, _, z) in enumerate(jacs):
            if z != 0:
                indices.append(i)
                zs.append(z)
        if not zs:
            return result
        prefix = [1] * (len(zs) + 1)
        for i, z in enumerate(zs):
            prefix[i + 1] = prefix[i] * z % p
        inv = pow(prefix[-1], -1, p)
        for i in range(len(zs) - 1, -1, -1):
            z_inv = inv * prefix[i] % p
            inv = inv * zs[i] % p
            x, y, _ = jacs[indices[i]]
            z_inv2 = z_inv * z_inv % p
            result[indices[i]] = (x * z_inv2 % p, y * z_inv2 * z_inv % p)
        if len(zs) > 1:
            default_registry().counter("msm.batch_inversions_saved").inc(
                len(zs) - 1
            )
        return result

    def small_multiples(self, point: tuple[int, int]) -> list[G1Point]:
        """The Straus table ``[None, P, 2P, .., 15P]`` (one batched inversion)."""
        jacs: list[tuple[int, int, int]] = [(point[0], point[1], 1)]
        jacs.append(self._jac_double(jacs[0]))
        for _ in range(13):
            jacs.append(self._jac_add_affine(jacs[-1], point))
        return [None] + self.batch_normalize(jacs)

    # -- scalar multiplication ----------------------------------------------

    def mul(self, point: G1Point, scalar: int) -> G1Point:
        scalar %= self.order
        if point is None or scalar == 0:
            return None
        if scalar == 1:
            return point
        if _GLV_ENABLED:
            endo = self.glv_endo()
            if endo is not None and scalar.bit_length() >= endo.min_bits:
                return self._mul_glv(point, scalar, endo)
        return self._mul_plain(point, scalar)

    def _mul_plain(self, point: G1Point, scalar: int) -> G1Point:
        """4-bit windowed double-and-add in Jacobian coordinates (no GLV)."""
        table = [None] * 16  # table[i] = i * point, affine
        table[1] = point
        table[2] = self.double(point)
        for i in range(3, 16):
            table[i] = self.add(table[i - 1], point)
        acc = (1, 1, 0)
        for nibble_index in range((scalar.bit_length() + 3) // 4 - 1, -1, -1):
            acc = self._jac_double(acc)
            acc = self._jac_double(acc)
            acc = self._jac_double(acc)
            acc = self._jac_double(acc)
            digit = (scalar >> (4 * nibble_index)) & 0xF
            if digit:
                acc = self._jac_add_affine(acc, table[digit])
        return self._from_jacobian(acc)

    # -- GLV endomorphism ----------------------------------------------------

    def glv_endo(self) -> GlvEndo | None:
        """The curve's GLV endomorphism, derived and verified once.

        Returns None when the curve does not support it (p or r not 1 mod 3,
        or the beta/lam pairing fails the generator check), in which case
        multiplication silently stays on the plain path.
        """
        if self._endo is False:
            self._endo = self._derive_endo()
        return self._endo

    def _derive_endo(self) -> GlvEndo | None:
        from .ntheory import sqrt_mod

        p, r = self.p, self.order
        if p % 3 != 1 or r % 3 != 1:
            return None
        sp = sqrt_mod(-3 % p, p)
        sr = sqrt_mod(-3 % r, r)
        if sp is None or sr is None:
            return None
        inv2_p = (p + 1) // 2  # inverse of 2 mod an odd p
        inv2_r = (r + 1) // 2
        betas = [(-1 + sp) * inv2_p % p, (-1 - sp) * inv2_p % p]
        lams = [(-1 + sr) * inv2_r % r, (-1 - sr) * inv2_r % r]
        gx, gy = self.generator
        # Match beta with the lam it acts as on the subgroup: phi(G) = lam*G.
        for lam in lams:
            lx_ly = self._mul_plain(self.generator, lam)
            if lx_ly is None:
                continue
            for beta in betas:
                if (gx * beta % p, gy) == lx_ly:
                    return GlvEndo(beta, lam, r)
        return None

    def _endo_apply(self, point: tuple[int, int], beta: int) -> tuple[int, int]:
        return (point[0] * beta % self.p, point[1])

    def _mul_glv(self, point: tuple[int, int], scalar: int, endo: GlvEndo) -> G1Point:
        """Half-length two-scalar multiplication via the endomorphism split."""
        k1, k2 = endo.decompose(scalar)
        p1 = point if k1 >= 0 else self.neg(point)
        p2 = self._endo_apply(point, endo.beta)
        if k2 < 0:
            p2 = self.neg(p2)
        k1, k2 = abs(k1), abs(k2)
        if k1 == 0 and k2 == 0:
            return None
        if k2 == 0:
            return self._mul_plain(p1, k1)
        if k1 == 0:
            return self._mul_plain(p2, k2)
        table1 = self.small_multiples(p1)
        table2 = self.small_multiples(p2)
        acc = (1, 1, 0)
        for nibble_index in range((max(k1.bit_length(), k2.bit_length()) + 3) // 4 - 1, -1, -1):
            acc = self._jac_double(acc)
            acc = self._jac_double(acc)
            acc = self._jac_double(acc)
            acc = self._jac_double(acc)
            shift = 4 * nibble_index
            d1 = (k1 >> shift) & 0xF
            if d1:
                acc = self._jac_add_affine(acc, table1[d1])
            d2 = (k2 >> shift) & 0xF
            if d2:
                acc = self._jac_add_affine(acc, table2[d2])
        return self._from_jacobian(acc)

    def mul_gen(self, scalar: int) -> G1Point:
        """Fixed-base multiplication by the generator (precomputed windows).

        The window table comes from the engine's process-wide cache when the
        engine layer is loaded (see :func:`set_fixed_base_provider`); only a
        borrowed reference is kept here.
        """
        if self._gen_window is None:
            if _FIXED_BASE_PROVIDER is not None:
                self._gen_window = _FIXED_BASE_PROVIDER(self, self.generator)
            else:
                self._gen_window = FixedBaseWindow(self, self.generator)
        return self._gen_window.mul(scalar)

    def multi_mul(
        self,
        points: Sequence[G1Point],
        scalars: Sequence[int],
        tables: Sequence[Sequence[G1Point] | None] | None = None,
    ) -> G1Point:
        """Multi-scalar multiplication, auto-selecting the algorithm.

        Large table-less inputs (``PIPPENGER_MIN_POINTS`` or more nonzero
        terms) go through :meth:`multi_mul_pippenger`; everything else runs
        Straus interleaved 4-bit windows.  ``tables`` optionally supplies
        precomputed 0..15 multiples per point (as produced by
        :class:`FixedBaseWindow.small_table`); entries may be None to build
        the table ad hoc.  The engine cache uses this to skip rebuilding
        tables for CRS points on every commitment/opening — and supplying
        tables pins the Straus path, since cached tables already paid the
        cost Pippenger would avoid.
        """
        if len(points) != len(scalars):
            raise ValueError("points and scalars must have equal length")
        if tables is not None and len(tables) != len(points):
            raise ValueError("tables and points must have equal length")
        pairs = [
            (pt, k % self.order, tables[i] if tables is not None else None)
            for i, (pt, k) in enumerate(zip(points, scalars))
            if pt is not None and k % self.order != 0
        ]
        if not pairs:
            return None
        if len(pairs) == 1:
            return self.mul(pairs[0][0], pairs[0][1])
        if tables is None and len(pairs) >= PIPPENGER_MIN_POINTS:
            return self.multi_mul_pippenger(
                [pt for pt, _, _ in pairs], [k for _, k, _ in pairs]
            )
        default_registry().counter("msm.straus.calls").inc()
        prepared = []
        max_bits = 0
        for pt, k, table in pairs:
            if table is None:
                table = self.small_multiples(pt)
            prepared.append((table, k))
            max_bits = max(max_bits, k.bit_length())
        acc = (1, 1, 0)
        for nibble_index in range((max_bits + 3) // 4 - 1, -1, -1):
            acc = self._jac_double(acc)
            acc = self._jac_double(acc)
            acc = self._jac_double(acc)
            acc = self._jac_double(acc)
            shift = 4 * nibble_index
            for table, k in prepared:
                digit = (k >> shift) & 0xF
                if digit:
                    acc = self._jac_add_affine(acc, table[digit])
        return self._from_jacobian(acc)

    def multi_mul_pippenger(
        self,
        points: Sequence[G1Point],
        scalars: Sequence[int],
        negs: Sequence[G1Point] | None = None,
        window: int | None = None,
    ) -> G1Point:
        """Pippenger bucket-method MSM with signed window digits.

        Scalars are recoded into signed base-``2**c`` digits so only
        ``2**(c-1)`` buckets per window are needed (negative digits add the
        negated point).  No per-point tables are built, so the cost is
        ``bits/c`` windows of (one mixed add per nonzero digit plus two
        Jacobian adds per bucket) — asymptotically ``O(bits * n / log n)``
        versus Straus's ``O(bits * n / 4)``.  ``negs`` optionally supplies
        precomputed negations (see :class:`MsmBasis`); ``window`` overrides
        the size heuristic (benchmarks only).
        """
        if len(points) != len(scalars):
            raise ValueError("points and scalars must have equal length")
        if negs is not None and len(negs) != len(points):
            raise ValueError("negs and points must have equal length")
        order = self.order
        p = self.p
        endo = self.glv_endo() if _GLV_ENABLED else None
        pts: list[tuple[int, int]] = []
        neg_pts: list[tuple[int, int]] = []
        ks: list[int] = []
        for i, (pt, k) in enumerate(zip(points, scalars)):
            k %= order
            if pt is None or k == 0:
                continue
            neg = negs[i] if negs is not None else None
            if neg is None:
                neg = (pt[0], -pt[1] % p)
            if endo is not None and k.bit_length() >= endo.min_bits:
                # GLV split: two half-width terms halve the window count
                # (and with it the doublings) for the whole MSM.
                k1, k2 = endo.decompose(k)
                if k1:
                    pts.append(pt if k1 >= 0 else neg)
                    neg_pts.append(neg if k1 >= 0 else pt)
                    ks.append(abs(k1))
                if k2:
                    phi = self._endo_apply(pt, endo.beta)
                    phi_neg = (phi[0], -phi[1] % p)
                    pts.append(phi if k2 >= 0 else phi_neg)
                    neg_pts.append(phi_neg if k2 >= 0 else phi)
                    ks.append(abs(k2))
                continue
            pts.append(pt)
            neg_pts.append(neg)
            ks.append(k)
        if not pts:
            return None
        if len(pts) == 1:
            return self.mul(pts[0], ks[0])
        c = window if window is not None else _pippenger_window(len(pts))
        half = 1 << (c - 1)
        digit_rows = [_signed_window_digits(k, c) for k in ks]
        n_windows = max(len(row) for row in digit_rows)
        registry = default_registry()
        registry.counter("msm.pippenger.calls").inc()
        registry.counter("msm.pippenger.windows").inc(n_windows)
        registry.counter("msm.pippenger.points").inc(len(pts))
        acc = (1, 1, 0)
        for w in range(n_windows - 1, -1, -1):
            if acc[2] != 0:
                for _ in range(c):
                    acc = self._jac_double(acc)
            buckets: list[tuple[int, int, int] | None] = [None] * (half + 1)
            for i, row in enumerate(digit_rows):
                if w >= len(row):
                    continue
                digit = row[w]
                if digit == 0:
                    continue
                if digit > 0:
                    pt, bucket = pts[i], digit
                else:
                    pt, bucket = neg_pts[i], -digit
                slot = buckets[bucket]
                buckets[bucket] = (
                    (pt[0], pt[1], 1)
                    if slot is None
                    else self._jac_add_affine(slot, pt)
                )
            # Running-sum aggregation: sum_b b * bucket[b] with 2 adds/bucket.
            running = (1, 1, 0)
            window_sum = (1, 1, 0)
            for bucket in range(half, 0, -1):
                entry = buckets[bucket]
                if entry is not None:
                    running = self._jac_add(running, entry)
                if running[2] != 0:
                    window_sum = self._jac_add(window_sum, running)
            acc = self._jac_add(acc, window_sum)
        return self._from_jacobian(acc)

    def sum(self, points: Iterable[G1Point]) -> G1Point:
        acc = (1, 1, 0)
        for pt in points:
            if pt is not None:
                acc = self._jac_add_affine(acc, pt)
        return self._from_jacobian(acc)

    def __repr__(self) -> str:
        return f"G1Group(p~2^{self.p.bit_length()}, order~2^{self.order.bit_length()})"


class G2Group:
    """The order-r subgroup of the sextic twist E'(Fp2): y^2 = x^3 + b'."""

    __slots__ = ("ctx", "b", "order", "generator", "cofactor")

    def __init__(
        self,
        ctx: TowerContext,
        b: Fp2,
        order: int,
        generator: tuple[Fp2, Fp2],
        cofactor: int = 1,
    ):
        self.ctx = ctx
        self.b = b
        self.order = order
        self.generator = generator
        self.cofactor = cofactor
        if not self.is_on_curve(generator):
            raise ValueError("G2 generator is not on the twist")

    def is_on_curve(self, point: G2Point) -> bool:
        if point is None:
            return True
        x, y = point
        return (y.square() - (x.square() * x + self.b)).is_zero()

    def in_subgroup(self, point: G2Point) -> bool:
        return self.is_on_curve(point) and self.mul(point, self.order) is None

    def neg(self, point: G2Point) -> G2Point:
        if point is None:
            return None
        return (point[0], -point[1])

    def add(self, a: G2Point, b: G2Point) -> G2Point:
        if a is None:
            return b
        if b is None:
            return a
        x1, y1 = a
        x2, y2 = b
        if x1 == x2:
            if (y1 + y2).is_zero():
                return None
            return self.double(a)
        lam = (y2 - y1) * (x2 - x1).inverse()
        x3 = lam.square() - x1 - x2
        y3 = lam * (x1 - x3) - y1
        return (x3, y3)

    def double(self, a: G2Point) -> G2Point:
        if a is None:
            return None
        x1, y1 = a
        if y1.is_zero():
            return None
        lam = x1.square().scale(3) * (y1 + y1).inverse()
        x3 = lam.square() - x1 - x1
        y3 = lam * (x1 - x3) - y1
        return (x3, y3)

    def mul(self, point: G2Point, scalar: int) -> G2Point:
        scalar %= self.order * max(self.cofactor, 1)
        if point is None or scalar == 0:
            return None
        result = None
        neg_point = self.neg(point)
        for digit in reversed(_naf(scalar)):
            result = self.double(result)
            if digit == 1:
                result = self.add(result, point)
            elif digit == -1:
                result = self.add(result, neg_point)
        return result

    def mul_gen(self, scalar: int) -> G2Point:
        return self.mul(self.generator, scalar)

    def frobenius(self, point: G2Point) -> G2Point:
        """The p-power Frobenius mapped through the sextic twist."""
        if point is None:
            return None
        x, y = point
        return (
            x.conjugate() * self.ctx.g2_frob_x,
            y.conjugate() * self.ctx.g2_frob_y,
        )

    def __repr__(self) -> str:
        return f"G2Group(order~2^{self.order.bit_length()})"
