"""Prime-field helpers.

Field elements are plain Python integers in [0, p); this module provides a
small context object bundling the modulus with the handful of operations the
curve and serialization layers need.  The extension-tower arithmetic lives in
:mod:`repro.crypto.tower`.
"""

from __future__ import annotations

from .ntheory import is_probable_prime, legendre_symbol, sqrt_mod

__all__ = ["PrimeField"]


class PrimeField:
    """The field Z/pZ for an odd prime p."""

    __slots__ = ("p", "byte_length")

    def __init__(self, p: int):
        if p < 3 or not is_probable_prime(p):
            raise ValueError(f"modulus must be an odd prime, got {p}")
        self.p = p
        self.byte_length = (p.bit_length() + 7) // 8

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        return a * b % self.p

    def neg(self, a: int) -> int:
        return -a % self.p

    def inv(self, a: int) -> int:
        return pow(a, -1, self.p)

    def pow(self, a: int, e: int) -> int:
        return pow(a, e, self.p)

    def sqrt(self, a: int) -> int | None:
        return sqrt_mod(a, self.p)

    def is_square(self, a: int) -> bool:
        return legendre_symbol(a, self.p) >= 0 and (
            a % self.p == 0 or legendre_symbol(a, self.p) == 1
        )

    def reduce(self, a: int) -> int:
        return a % self.p

    def to_bytes(self, a: int) -> bytes:
        return (a % self.p).to_bytes(self.byte_length, "big")

    def from_bytes(self, data: bytes) -> int:
        value = int.from_bytes(data, "big")
        if value >= self.p:
            raise ValueError("encoding is not a reduced field element")
        return value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))

    def __repr__(self) -> str:
        return f"PrimeField(p~2^{self.p.bit_length()})"
