"""Prime-field helpers and the optional gmpy2 integer backend.

Field elements are plain Python integers in [0, p); this module provides a
small context object bundling the modulus with the handful of operations the
curve and serialization layers need.  The extension-tower arithmetic lives in
:mod:`repro.crypto.tower`.

**Integer backend.**  All modular arithmetic in the crypto stack funnels
through Python's ``*`` and ``%`` on the operand types chosen here.  When
`gmpy2 <https://pypi.org/project/gmpy2>`_ is importable (the ``fast``
optional extra), moduli are stored as ``gmpy2.mpz`` — every reduction
against them then runs through GMP, which is several times faster than
CPython's long division at pairing-sized operand widths, while results
interoperate transparently with plain ``int`` (same values, same hashing,
same equality).  Without gmpy2 the backend is plain ``int`` and nothing
changes.  ``REPRO_INT_BACKEND=python`` forces the fallback even when gmpy2
is installed (used by the variant-agreement tests and CI matrix).

The backend only affects *representation speed*; all byte encodings coerce
through ``int`` (see :mod:`repro.crypto.serialize`), so proofs and
verdicts are bit-for-bit identical across backends.
"""

from __future__ import annotations

import os

from .ntheory import is_probable_prime, legendre_symbol, sqrt_mod

__all__ = ["PrimeField", "mpz", "int_backend", "HAVE_GMPY2"]


def _load_backend():
    """Resolve the integer constructor: gmpy2.mpz when available and wanted."""
    if os.environ.get("REPRO_INT_BACKEND", "").lower() == "python":
        return int, False
    try:  # pragma: no cover - exercised by the gmpy2 CI matrix leg
        from gmpy2 import mpz as gmpy2_mpz
    except ImportError:
        return int, False
    return gmpy2_mpz, True  # pragma: no cover - gmpy2 CI matrix leg


mpz, HAVE_GMPY2 = _load_backend()


def int_backend() -> str:
    """Name of the active integer backend: ``"gmpy2"`` or ``"python"``."""
    return "gmpy2" if HAVE_GMPY2 else "python"


class PrimeField:
    """The field Z/pZ for an odd prime p."""

    __slots__ = ("p", "byte_length")

    def __init__(self, p: int):
        if p < 3 or not is_probable_prime(p):
            raise ValueError(f"modulus must be an odd prime, got {p}")
        # Stored through the active integer backend: `a % self.p` then runs
        # GMP arithmetic when gmpy2 is available (see module docstring).
        self.p = mpz(p)
        self.byte_length = (p.bit_length() + 7) // 8

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        return a * b % self.p

    def neg(self, a: int) -> int:
        return -a % self.p

    def inv(self, a: int) -> int:
        return pow(a, -1, self.p)

    def pow(self, a: int, e: int) -> int:
        return pow(a, e, self.p)

    def sqrt(self, a: int) -> int | None:
        return sqrt_mod(a, self.p)

    def is_square(self, a: int) -> bool:
        return legendre_symbol(a, self.p) >= 0 and (
            a % self.p == 0 or legendre_symbol(a, self.p) == 1
        )

    def reduce(self, a: int) -> int:
        return a % self.p

    def to_bytes(self, a: int) -> bytes:
        # int() coercion keeps the encoding backend-independent (mpz.to_bytes
        # only exists in recent gmpy2 releases).
        return int(a % self.p).to_bytes(self.byte_length, "big")

    def from_bytes(self, data: bytes) -> int:
        value = int.from_bytes(data, "big")
        if value >= self.p:
            raise ValueError("encoding is not a reduced field element")
        return value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))

    def __repr__(self) -> str:
        return f"PrimeField(p~2^{self.p.bit_length()})"
