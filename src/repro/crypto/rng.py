"""Deterministic randomness for reproducible protocol runs.

Experiments and tests need run-to-run reproducibility, so every component
draws randomness through a :class:`DeterministicRng` seeded explicitly.
The stream is SHA-256 in counter mode, which is uniform enough for
simulation purposes and independent of Python's global ``random`` state.

Production deployments would swap this for ``secrets``; the interface is a
subset of ``random.Random`` so the swap is one line.
"""

from __future__ import annotations

import hashlib

__all__ = ["DeterministicRng"]


class DeterministicRng:
    """SHA-256 counter-mode pseudo-random stream with a string seed."""

    __slots__ = ("_key", "_counter", "_buffer")

    def __init__(self, seed: str | bytes | int = 0):
        if isinstance(seed, int):
            seed = seed.to_bytes(16, "big", signed=False) if seed >= 0 else str(seed).encode()
        elif isinstance(seed, str):
            seed = seed.encode()
        self._key = hashlib.sha256(b"repro/rng" + seed).digest()
        self._counter = 0
        self._buffer = b""

    def fork(self, label: str) -> "DeterministicRng":
        """An independent stream derived from this one (for sub-components)."""
        return DeterministicRng(self._key + label.encode())

    def _refill(self) -> None:
        block = hashlib.sha256(
            self._key + self._counter.to_bytes(8, "big")
        ).digest()
        self._counter += 1
        self._buffer += block

    def randbytes(self, count: int) -> bytes:
        while len(self._buffer) < count:
            self._refill()
        out, self._buffer = self._buffer[:count], self._buffer[count:]
        return out

    def getrandbits(self, bits: int) -> int:
        if bits <= 0:
            return 0
        raw = int.from_bytes(self.randbytes((bits + 7) // 8), "big")
        return raw >> ((8 - bits % 8) % 8)

    def randrange(self, start: int, stop: int | None = None) -> int:
        if stop is None:
            start, stop = 0, start
        width = stop - start
        if width <= 0:
            raise ValueError("empty range")
        bits = width.bit_length()
        while True:
            candidate = self.getrandbits(bits)
            if candidate < width:
                return start + candidate

    def randint(self, a: int, b: int) -> int:
        return self.randrange(a, b + 1)

    def random(self) -> float:
        return self.getrandbits(53) / (1 << 53)

    def choice(self, sequence):
        if not sequence:
            raise IndexError("choice from empty sequence")
        return sequence[self.randrange(len(sequence))]

    def shuffle(self, items: list) -> None:
        for i in range(len(items) - 1, 0, -1):
            j = self.randrange(i + 1)
            items[i], items[j] = items[j], items[i]

    def sample(self, population, k: int) -> list:
        population = list(population)
        if k > len(population):
            raise ValueError("sample larger than population")
        self.shuffle(population)
        return population[:k]
