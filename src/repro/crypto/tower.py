"""Extension-field tower Fp2 -> Fp6 -> Fp12 for BN pairings.

The tower is the standard one used with Barreto-Naehrig curves:

* ``Fp2  = Fp[u] / (u^2 + 1)``          (requires p = 3 mod 4)
* ``Fp6  = Fp2[v] / (v^3 - xi)``        (xi a sextic non-residue in Fp2)
* ``Fp12 = Fp6[w] / (w^2 - v)``         (so w^6 = xi)

Elements are immutable; all arithmetic returns new objects.  The hot path
(Miller loop, final exponentiation) uses the sparse ``mul_by_014`` product
and conjugation-based inversion in the cyclotomic subgroup.

A :class:`TowerContext` bundles the modulus with the precomputed Frobenius
constants; every element keeps a reference to its context so mixed-context
arithmetic fails loudly.

**Lazy reduction.**  The Fp6 products (full, sparse ``mul_by_01``) are the
inner loop of every pairing.  The strict path reduces after every Fp2
operation — ~30 ``%`` reductions per Fp6 multiplication.  The lazy path
(default, ``set_lazy_reduction`` / ``REPRO_LAZY_TOWER=0`` to disable)
carries unreduced integer coefficient pairs through the Karatsuba tree and
reduces exactly once per output coefficient — 6 reductions per Fp6
multiplication.  Intermediates stay below a few ``p**3`` so Python (or
GMP) big-int arithmetic absorbs the growth; outputs are always fully
reduced, so both paths produce identical elements bit for bit.
"""

from __future__ import annotations

import os

from .field import mpz

__all__ = ["TowerContext", "Fp2", "Fp6", "Fp12", "set_lazy_reduction", "lazy_reduction_enabled"]

# Module-level switch: the strict path is kept as the reference semantics
# for the variant-agreement property tests (tests/crypto/test_tower_lazy.py).
_LAZY_REDUCTION = os.environ.get("REPRO_LAZY_TOWER", "1") != "0"


def set_lazy_reduction(enabled: bool) -> bool:
    """Toggle lazy tower reduction; returns the previous setting."""
    global _LAZY_REDUCTION
    previous = _LAZY_REDUCTION
    _LAZY_REDUCTION = bool(enabled)
    return previous


def lazy_reduction_enabled() -> bool:
    return _LAZY_REDUCTION


def _mul2_raw(a0: int, a1: int, b0: int, b1: int) -> tuple[int, int]:
    """Unreduced Fp2 product (Karatsuba, u^2 = -1); coefficients may be
    negative and up to ~4p^2 in magnitude for reduced inputs."""
    t0 = a0 * b0
    t1 = a1 * b1
    t2 = (a0 + a1) * (b0 + b1)
    return t0 - t1, t2 - t0 - t1


class TowerContext:
    """Modulus, non-residue and Frobenius constants for one BN tower."""

    __slots__ = (
        "p",
        "xi",
        "frob_gamma",     # gamma^k for k = 0..5, gamma = xi^((p-1)/6) in Fp2
        "g2_frob_x",      # gamma^2  — Frobenius twist constant for G2 x-coord
        "g2_frob_y",      # gamma^3  — Frobenius twist constant for G2 y-coord
    )

    def __init__(self, p: int, xi: tuple[int, int]):
        if p % 4 != 3:
            raise ValueError("tower requires p = 3 mod 4 (so that u^2 = -1)")
        if p % 6 != 1:
            raise ValueError("tower requires p = 1 mod 6 (BN primes satisfy this)")
        # Through the integer backend: every `% p` below runs GMP when the
        # optional gmpy2 fast path is active (see repro.crypto.field).
        self.p = mpz(p)
        self.xi = Fp2(self, xi[0] % p, xi[1] % p)
        gamma = self.xi.pow((p - 1) // 6)
        powers = [Fp2.one(self)]
        for _ in range(5):
            powers.append(powers[-1] * gamma)
        self.frob_gamma = tuple(powers)
        self.g2_frob_x = powers[2]
        self.g2_frob_y = powers[3]

    def __repr__(self) -> str:
        return f"TowerContext(p~2^{self.p.bit_length()})"


class Fp2:
    """Element c0 + c1*u of Fp2 with u^2 = -1."""

    __slots__ = ("ctx", "c0", "c1")

    def __init__(self, ctx: TowerContext, c0: int, c1: int):
        self.ctx = ctx
        self.c0 = c0
        self.c1 = c1

    @staticmethod
    def zero(ctx: TowerContext) -> "Fp2":
        return Fp2(ctx, 0, 0)

    @staticmethod
    def one(ctx: TowerContext) -> "Fp2":
        return Fp2(ctx, 1, 0)

    @staticmethod
    def from_int(ctx: TowerContext, value: int) -> "Fp2":
        return Fp2(ctx, value % ctx.p, 0)

    def is_zero(self) -> bool:
        return self.c0 == 0 and self.c1 == 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fp2)
            and self.c0 == other.c0
            and self.c1 == other.c1
            and self.ctx is other.ctx
        )

    def __hash__(self) -> int:
        return hash((self.ctx.p, self.c0, self.c1))

    def __add__(self, other: "Fp2") -> "Fp2":
        p = self.ctx.p
        return Fp2(self.ctx, (self.c0 + other.c0) % p, (self.c1 + other.c1) % p)

    def __sub__(self, other: "Fp2") -> "Fp2":
        p = self.ctx.p
        return Fp2(self.ctx, (self.c0 - other.c0) % p, (self.c1 - other.c1) % p)

    def __neg__(self) -> "Fp2":
        p = self.ctx.p
        return Fp2(self.ctx, -self.c0 % p, -self.c1 % p)

    def __mul__(self, other: "Fp2") -> "Fp2":
        # Karatsuba with u^2 = -1: 3 base-field multiplications.
        p = self.ctx.p
        a0, a1 = self.c0, self.c1
        b0, b1 = other.c0, other.c1
        t0 = a0 * b0
        t1 = a1 * b1
        t2 = (a0 + a1) * (b0 + b1)
        return Fp2(self.ctx, (t0 - t1) % p, (t2 - t0 - t1) % p)

    def scale(self, k: int) -> "Fp2":
        p = self.ctx.p
        return Fp2(self.ctx, self.c0 * k % p, self.c1 * k % p)

    def square(self) -> "Fp2":
        # (a0 + a1 u)^2 = (a0+a1)(a0-a1) + 2 a0 a1 u
        p = self.ctx.p
        a0, a1 = self.c0, self.c1
        return Fp2(self.ctx, (a0 + a1) * (a0 - a1) % p, 2 * a0 * a1 % p)

    def conjugate(self) -> "Fp2":
        return Fp2(self.ctx, self.c0, -self.c1 % self.ctx.p)

    def inverse(self) -> "Fp2":
        p = self.ctx.p
        norm = (self.c0 * self.c0 + self.c1 * self.c1) % p
        if norm == 0:
            raise ZeroDivisionError("inverse of zero in Fp2")
        inv = pow(norm, -1, p)
        return Fp2(self.ctx, self.c0 * inv % p, -self.c1 * inv % p)

    def pow(self, exponent: int) -> "Fp2":
        if exponent < 0:
            return self.inverse().pow(-exponent)
        result = Fp2.one(self.ctx)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base.square()
            exponent >>= 1
        return result

    def mul_by_xi(self) -> "Fp2":
        return self * self.ctx.xi

    def sqrt(self) -> "Fp2 | None":
        """A square root in Fp2, or None.  Uses the norm-based algorithm."""
        from .ntheory import sqrt_mod

        p = self.ctx.p
        if self.is_zero():
            return Fp2.zero(self.ctx)
        if self.c1 == 0:
            root = sqrt_mod(self.c0, p)
            if root is not None:
                return Fp2(self.ctx, root, 0)
            # sqrt of a non-residue a is sqrt(-a) * u since u^2 = -1.
            root = sqrt_mod(-self.c0 % p, p)
            if root is None:
                return None
            return Fp2(self.ctx, 0, root)
        # General case: for a = a0 + a1 u, solve x = x0 + x1 u with
        # x0^2 = (a0 + sqrt(norm))/2 (trying both root signs).
        norm = (self.c0 * self.c0 + self.c1 * self.c1) % p
        n_root = sqrt_mod(norm, p)
        if n_root is None:
            return None
        inv2 = pow(2, -1, p)
        for sign in (1, -1):
            x0_sq = (self.c0 + sign * n_root) * inv2 % p
            x0 = sqrt_mod(x0_sq, p)
            if x0 is None or x0 == 0:
                continue
            x1 = self.c1 * pow(2 * x0, -1, p) % p
            candidate = Fp2(self.ctx, x0, x1)
            if candidate.square() == self:
                return candidate
        return None

    def __repr__(self) -> str:
        return f"Fp2({self.c0}, {self.c1})"


class Fp6:
    """Element c0 + c1*v + c2*v^2 of Fp6 over Fp2 with v^3 = xi."""

    __slots__ = ("ctx", "c0", "c1", "c2")

    def __init__(self, ctx: TowerContext, c0: Fp2, c1: Fp2, c2: Fp2):
        self.ctx = ctx
        self.c0 = c0
        self.c1 = c1
        self.c2 = c2

    @staticmethod
    def zero(ctx: TowerContext) -> "Fp6":
        z = Fp2.zero(ctx)
        return Fp6(ctx, z, z, z)

    @staticmethod
    def one(ctx: TowerContext) -> "Fp6":
        return Fp6(ctx, Fp2.one(ctx), Fp2.zero(ctx), Fp2.zero(ctx))

    def is_zero(self) -> bool:
        return self.c0.is_zero() and self.c1.is_zero() and self.c2.is_zero()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fp6)
            and self.c0 == other.c0
            and self.c1 == other.c1
            and self.c2 == other.c2
        )

    def __hash__(self) -> int:
        return hash((self.c0, self.c1, self.c2))

    def __add__(self, other: "Fp6") -> "Fp6":
        return Fp6(self.ctx, self.c0 + other.c0, self.c1 + other.c1, self.c2 + other.c2)

    def __sub__(self, other: "Fp6") -> "Fp6":
        return Fp6(self.ctx, self.c0 - other.c0, self.c1 - other.c1, self.c2 - other.c2)

    def __neg__(self) -> "Fp6":
        return Fp6(self.ctx, -self.c0, -self.c1, -self.c2)

    def __mul__(self, other: "Fp6") -> "Fp6":
        if _LAZY_REDUCTION:
            return self._mul_lazy(other)
        # Karatsuba-style 6-multiplication product with v^3 = xi.
        a0, a1, a2 = self.c0, self.c1, self.c2
        b0, b1, b2 = other.c0, other.c1, other.c2
        t0 = a0 * b0
        t1 = a1 * b1
        t2 = a2 * b2
        c0 = ((a1 + a2) * (b1 + b2) - t1 - t2).mul_by_xi() + t0
        c1 = (a0 + a1) * (b0 + b1) - t0 - t1 + t2.mul_by_xi()
        c2 = (a0 + a2) * (b0 + b2) - t0 - t2 + t1
        return Fp6(self.ctx, c0, c1, c2)

    def _mul_lazy(self, other: "Fp6") -> "Fp6":
        """Same Karatsuba product, one reduction per output coefficient."""
        ctx = self.ctx
        p = ctx.p
        xi = ctx.xi
        x0, x1 = xi.c0, xi.c1
        a0, a1, a2 = self.c0, self.c1, self.c2
        b0, b1, b2 = other.c0, other.c1, other.c2
        t0 = _mul2_raw(a0.c0, a0.c1, b0.c0, b0.c1)
        t1 = _mul2_raw(a1.c0, a1.c1, b1.c0, b1.c1)
        t2 = _mul2_raw(a2.c0, a2.c1, b2.c0, b2.c1)
        # c0 = xi * ((a1+a2)(b1+b2) - t1 - t2) + t0
        m = _mul2_raw(a1.c0 + a2.c0, a1.c1 + a2.c1, b1.c0 + b2.c0, b1.c1 + b2.c1)
        u0, u1 = m[0] - t1[0] - t2[0], m[1] - t1[1] - t2[1]
        v = _mul2_raw(u0, u1, x0, x1)
        c0 = Fp2(ctx, (v[0] + t0[0]) % p, (v[1] + t0[1]) % p)
        # c1 = (a0+a1)(b0+b1) - t0 - t1 + xi * t2
        m = _mul2_raw(a0.c0 + a1.c0, a0.c1 + a1.c1, b0.c0 + b1.c0, b0.c1 + b1.c1)
        v = _mul2_raw(t2[0], t2[1], x0, x1)
        c1 = Fp2(ctx, (m[0] - t0[0] - t1[0] + v[0]) % p, (m[1] - t0[1] - t1[1] + v[1]) % p)
        # c2 = (a0+a2)(b0+b2) - t0 - t2 + t1
        m = _mul2_raw(a0.c0 + a2.c0, a0.c1 + a2.c1, b0.c0 + b2.c0, b0.c1 + b2.c1)
        c2 = Fp2(ctx, (m[0] - t0[0] - t2[0] + t1[0]) % p, (m[1] - t0[1] - t2[1] + t1[1]) % p)
        return Fp6(ctx, c0, c1, c2)

    def square(self) -> "Fp6":
        return self * self

    def scale_fp2(self, k: Fp2) -> "Fp6":
        return Fp6(self.ctx, self.c0 * k, self.c1 * k, self.c2 * k)

    def mul_by_v(self) -> "Fp6":
        """Multiply by v: (c0, c1, c2) -> (xi*c2, c0, c1)."""
        return Fp6(self.ctx, self.c2.mul_by_xi(), self.c0, self.c1)

    def mul_by_01(self, b0: Fp2, b1: Fp2) -> "Fp6":
        """Multiply by the sparse element b0 + b1*v."""
        a0, a1, a2 = self.c0, self.c1, self.c2
        if _LAZY_REDUCTION:
            ctx = self.ctx
            p = ctx.p
            xi = ctx.xi
            t0 = _mul2_raw(a0.c0, a0.c1, b0.c0, b0.c1)
            t1 = _mul2_raw(a1.c0, a1.c1, b1.c0, b1.c1)
            m = _mul2_raw(a2.c0, a2.c1, b1.c0, b1.c1)
            v = _mul2_raw(m[0], m[1], xi.c0, xi.c1)
            r0 = Fp2(ctx, (v[0] + t0[0]) % p, (v[1] + t0[1]) % p)
            m = _mul2_raw(a0.c0 + a1.c0, a0.c1 + a1.c1, b0.c0 + b1.c0, b0.c1 + b1.c1)
            r1 = Fp2(ctx, (m[0] - t0[0] - t1[0]) % p, (m[1] - t0[1] - t1[1]) % p)
            m = _mul2_raw(a2.c0, a2.c1, b0.c0, b0.c1)
            r2 = Fp2(ctx, (m[0] + t1[0]) % p, (m[1] + t1[1]) % p)
            return Fp6(ctx, r0, r1, r2)
        t0 = a0 * b0
        t1 = a1 * b1
        c0 = (a2 * b1).mul_by_xi() + t0
        c1 = (a0 + a1) * (b0 + b1) - t0 - t1
        c2 = a2 * b0 + t1
        return Fp6(self.ctx, c0, c1, c2)

    def mul_by_0(self, b0: Fp2) -> "Fp6":
        return Fp6(self.ctx, self.c0 * b0, self.c1 * b0, self.c2 * b0)

    def inverse(self) -> "Fp6":
        a0, a1, a2 = self.c0, self.c1, self.c2
        d0 = a0.square() - (a1 * a2).mul_by_xi()
        d1 = a2.square().mul_by_xi() - a0 * a1
        d2 = a1.square() - a0 * a2
        t = a0 * d0 + (a2 * d1).mul_by_xi() + (a1 * d2).mul_by_xi()
        t_inv = t.inverse()
        return Fp6(self.ctx, d0 * t_inv, d1 * t_inv, d2 * t_inv)

    def frobenius(self) -> "Fp6":
        """The p-power map on Fp6 (conjugate coefficients, twist by gamma^2k)."""
        gammas = self.ctx.frob_gamma
        return Fp6(
            self.ctx,
            self.c0.conjugate(),
            self.c1.conjugate() * gammas[2],
            self.c2.conjugate() * gammas[4],
        )

    def __repr__(self) -> str:
        return f"Fp6({self.c0!r}, {self.c1!r}, {self.c2!r})"


class Fp12:
    """Element g0 + g1*w of Fp12 over Fp6 with w^2 = v."""

    __slots__ = ("ctx", "g0", "g1")

    def __init__(self, ctx: TowerContext, g0: Fp6, g1: Fp6):
        self.ctx = ctx
        self.g0 = g0
        self.g1 = g1

    @staticmethod
    def zero(ctx: TowerContext) -> "Fp12":
        return Fp12(ctx, Fp6.zero(ctx), Fp6.zero(ctx))

    @staticmethod
    def one(ctx: TowerContext) -> "Fp12":
        return Fp12(ctx, Fp6.one(ctx), Fp6.zero(ctx))

    def is_one(self) -> bool:
        return self == Fp12.one(self.ctx)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Fp12) and self.g0 == other.g0 and self.g1 == other.g1

    def __hash__(self) -> int:
        return hash((self.g0, self.g1))

    def __add__(self, other: "Fp12") -> "Fp12":
        return Fp12(self.ctx, self.g0 + other.g0, self.g1 + other.g1)

    def __sub__(self, other: "Fp12") -> "Fp12":
        return Fp12(self.ctx, self.g0 - other.g0, self.g1 - other.g1)

    def __mul__(self, other: "Fp12") -> "Fp12":
        # Karatsuba with w^2 = v: 3 Fp6 multiplications.
        a0, a1 = self.g0, self.g1
        b0, b1 = other.g0, other.g1
        t0 = a0 * b0
        t1 = a1 * b1
        t2 = (a0 + a1) * (b0 + b1)
        return Fp12(self.ctx, t0 + t1.mul_by_v(), t2 - t0 - t1)

    def square(self) -> "Fp12":
        # Complex squaring: 2 Fp6 multiplications.
        a0, a1 = self.g0, self.g1
        t0 = a0 * a1
        t1 = (a0 + a1) * (a0 + a1.mul_by_v())
        g0 = t1 - t0 - t0.mul_by_v()
        g1 = t0 + t0
        return Fp12(self.ctx, g0, g1)

    def conjugate(self) -> "Fp12":
        """The p^6-power map; equals inversion on the cyclotomic subgroup."""
        return Fp12(self.ctx, self.g0, -self.g1)

    def inverse(self) -> "Fp12":
        t = (self.g0.square() - self.g1.square().mul_by_v()).inverse()
        return Fp12(self.ctx, self.g0 * t, -(self.g1 * t))

    def mul_by_014(self, a0: Fp2, b0: Fp2, b1: Fp2) -> "Fp12":
        """Multiply by the sparse line value a0 + (b0 + b1*v)*w."""
        g0, g1 = self.g0, self.g1
        t0 = g0.mul_by_0(a0)
        t1 = g1.mul_by_01(b0, b1)
        cross = (g0 + g1).mul_by_01(a0 + b0, b1) - t0 - t1
        return Fp12(self.ctx, t0 + t1.mul_by_v(), cross)

    def frobenius(self, power: int = 1) -> "Fp12":
        """The p^power map, implemented by repeated application."""
        result = self
        gamma = self.ctx.frob_gamma[1]
        for _ in range(power % 12):
            g0 = result.g0.frobenius()
            g1 = result.g1.frobenius().scale_fp2(gamma)
            result = Fp12(self.ctx, g0, g1)
        return result

    def pow(self, exponent: int) -> "Fp12":
        if exponent < 0:
            return self.inverse().pow(-exponent)
        result = Fp12.one(self.ctx)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base.square()
            exponent >>= 1
        return result

    def cyclotomic_pow(self, exponent: int) -> "Fp12":
        """Exponentiation assuming ``self`` lies in the cyclotomic subgroup.

        Negative exponents use conjugation (free inversion); squarings use
        the plain complex squaring which is already cheap.
        """
        if exponent < 0:
            return self.conjugate().cyclotomic_pow(-exponent)
        result = Fp12.one(self.ctx)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base.square()
            exponent >>= 1
        return result

    def coefficients(self) -> tuple[Fp2, ...]:
        """Coefficients in the w-power basis (w^0 .. w^5)."""
        return (
            self.g0.c0, self.g1.c0, self.g0.c1,
            self.g1.c1, self.g0.c2, self.g1.c2,
        )

    def __repr__(self) -> str:
        return f"Fp12({self.g0!r}, {self.g1!r})"
