"""Canonical byte encodings for field and group elements.

The paper's Table II reports proof sizes in kilobytes; to reproduce it the
library serializes every proof object through the encoders here, so sizes
are measured on real wire bytes rather than estimated.

G1 points use compressed form (x-coordinate plus a sign byte), the format
the jPBC-era implementations and modern libraries both use, so proof sizes
have the same shape as the paper's.
"""

from __future__ import annotations

import struct

from .bn import BNCurve
from .curve import G1Point, G2Point
from .ntheory import sqrt_mod
from .tower import Fp2

__all__ = [
    "encode_int",
    "decode_int",
    "encode_scalar",
    "decode_scalar",
    "g1_to_bytes",
    "g1_from_bytes",
    "g2_to_bytes",
    "g2_from_bytes",
    "encode_bytes",
    "decode_bytes",
    "ByteReader",
]

_INFINITY_TAG = 0
_EVEN_TAG = 2
_ODD_TAG = 3
_G2_POINT_TAG = 4


def encode_int(value: int, width: int) -> bytes:
    # int() coercion keeps encodings identical whichever integer backend is
    # active (gmpy2 mpz grows .to_bytes only in recent releases).
    return int(value).to_bytes(width, "big")


def decode_int(data: bytes) -> int:
    return int.from_bytes(data, "big")


def encode_scalar(curve: BNCurve, value: int) -> bytes:
    width = (curve.r.bit_length() + 7) // 8
    return int(value % curve.r).to_bytes(width, "big")


def decode_scalar(curve: BNCurve, data: bytes) -> int:
    value = int.from_bytes(data, "big")
    if value >= curve.r:
        raise ValueError("scalar out of range")
    return value


def g1_to_bytes(curve: BNCurve, point: G1Point) -> bytes:
    """Compressed G1 encoding: 1 tag byte + x-coordinate."""
    width = curve.fp.byte_length
    if point is None:
        return bytes([_INFINITY_TAG]) + b"\x00" * width
    x, y = point
    tag = _ODD_TAG if y & 1 else _EVEN_TAG
    return bytes([tag]) + int(x).to_bytes(width, "big")


def g1_from_bytes(curve: BNCurve, data: bytes) -> G1Point:
    width = curve.fp.byte_length
    if len(data) != 1 + width:
        raise ValueError("bad G1 encoding length")
    tag = data[0]
    if tag == _INFINITY_TAG:
        return None
    if tag not in (_EVEN_TAG, _ODD_TAG):
        raise ValueError("bad G1 tag byte")
    x = int.from_bytes(data[1:], "big")
    if x >= curve.p:
        raise ValueError("G1 x-coordinate out of range")
    rhs = (x * x * x + curve.g1.b) % curve.p
    y = sqrt_mod(rhs, curve.p)
    if y is None:
        raise ValueError("G1 x-coordinate is not on the curve")
    if (y & 1) != (tag == _ODD_TAG):
        y = curve.p - y
    point = (x, y)
    if not curve.g1.is_on_curve(point):
        raise ValueError("decoded point is not on the curve")
    return point


def g2_to_bytes(curve: BNCurve, point: G2Point) -> bytes:
    """Uncompressed G2 encoding (G2 appears only in CRS material)."""
    width = curve.fp.byte_length
    if point is None:
        return bytes([_INFINITY_TAG]) + b"\x00" * (4 * width)
    x, y = point
    return bytes([_G2_POINT_TAG]) + b"".join(
        int(c).to_bytes(width, "big") for c in (x.c0, x.c1, y.c0, y.c1)
    )


def g2_from_bytes(curve: BNCurve, data: bytes) -> G2Point:
    width = curve.fp.byte_length
    if len(data) != 1 + 4 * width:
        raise ValueError("bad G2 encoding length")
    if data[0] == _INFINITY_TAG:
        return None
    if data[0] != _G2_POINT_TAG:
        raise ValueError("bad G2 tag byte")
    coords = [
        int.from_bytes(data[1 + i * width : 1 + (i + 1) * width], "big")
        for i in range(4)
    ]
    if any(c >= curve.p for c in coords):
        raise ValueError("G2 coordinate out of range")
    ctx = curve.tower
    point = (Fp2(ctx, coords[0], coords[1]), Fp2(ctx, coords[2], coords[3]))
    if not curve.g2.is_on_curve(point):
        raise ValueError("decoded point is not on the twist")
    return point


def encode_bytes(data: bytes) -> bytes:
    """Length-prefixed byte string."""
    return struct.pack(">I", len(data)) + data


def decode_bytes(data: bytes, offset: int = 0) -> tuple[bytes, int]:
    (length,) = struct.unpack_from(">I", data, offset)
    start = offset + 4
    end = start + length
    if end > len(data):
        raise ValueError("truncated byte string")
    return data[start:end], end


class ByteReader:
    """Sequential reader over a byte buffer with explicit error reporting."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes):
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        end = self.offset + count
        if end > len(self.data):
            raise ValueError("truncated buffer")
        chunk = self.data[self.offset : end]
        self.offset = end
        return chunk

    def take_bytes(self) -> bytes:
        chunk, self.offset = decode_bytes(self.data, self.offset)
        return chunk

    def take_g1(self, curve: BNCurve) -> G1Point:
        return g1_from_bytes(curve, self.take(1 + curve.fp.byte_length))

    def take_g2(self, curve: BNCurve) -> G2Point:
        return g2_from_bytes(curve, self.take(1 + 4 * curve.fp.byte_length))

    def take_scalar(self, curve: BNCurve) -> int:
        return decode_scalar(curve, self.take((curve.r.bit_length() + 7) // 8))

    def take_u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def expect_end(self) -> None:
        if self.offset != len(self.data):
            raise ValueError("trailing bytes in buffer")
