"""The signature-list POC strawman from Section II.C ("design challenge").

A participant signs each trace (sigma_t over the trace, sigma_v over
v || id || sigma_t) and submits the signed list as its POC.  Against an
*honest* committer this supports the proxy's checks; against a dishonest
one it fails in exactly the ways the paper describes:

* **no non-ownership proofs** — a participant that denies processing an id
  cannot be contradicted unless its original signed entry happens to be in
  the POC;
* **undetectable deletion** — omitting an entry at POC construction time
  leaves a perfectly well-formed POC;
* **no privacy** — every processed id is listed in the clear.

The benchmarks and the incentive experiments use this scheme as the
baseline DE-Sword is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..crypto.bn import BNCurve
from ..crypto.rng import DeterministicRng
from ..crypto.signatures import Signature, SigningKey, VerifyKey

__all__ = [
    "BaselineEntry",
    "BaselinePoc",
    "BaselineDecommitment",
    "BaselineProof",
    "BaselinePocScheme",
]


@dataclass(frozen=True)
class BaselineEntry:
    """One signed message (v || id || sigma_t, sigma_v) from Section II.C."""

    participant_id: str
    product_id: int
    trace_signature: Signature
    binding_signature: Signature


@dataclass(frozen=True)
class BaselinePoc:
    """The strawman POC: the participant's signed entry list."""

    participant_id: str
    verify_key: VerifyKey
    entries: tuple[BaselineEntry, ...]

    def listed_ids(self) -> set[int]:
        return {entry.product_id for entry in self.entries}

    def size_bytes(self, curve: BNCurve) -> int:
        per_entry = 16 + 2 * len(Signature(0, 0).to_bytes(curve))
        return len(self.verify_key.to_bytes()) + per_entry * len(self.entries)


@dataclass
class BaselineDecommitment:
    """Prover state: the traces and the signing key."""

    participant_id: str
    signing_key: SigningKey
    traces: dict[int, bytes]


@dataclass(frozen=True)
class BaselineProof:
    """The response to a query: the trace plus its signature, or a denial."""

    product_id: int
    trace_data: bytes | None
    trace_signature: Signature | None


class BaselinePocScheme:
    """Signature-list POCs over Schnorr signatures."""

    def __init__(self, curve: BNCurve):
        self.curve = curve

    @staticmethod
    def _trace_message(product_id: int, data: bytes) -> bytes:
        return b"trace:" + product_id.to_bytes(16, "big") + data

    @staticmethod
    def _binding_message(
        participant_id: str, product_id: int, trace_signature: Signature
    ) -> bytes:
        return (
            b"bind:"
            + participant_id.encode()
            + b":"
            + product_id.to_bytes(16, "big")
            + b":%d:%d" % (trace_signature.challenge, trace_signature.response)
        )

    def poc_agg(
        self,
        traces: Mapping[int, bytes],
        participant_id: str,
        signing_key: SigningKey,
        omit: set[int] | None = None,
    ) -> tuple[BaselinePoc, BaselineDecommitment]:
        """Build the signed list; ``omit`` models the deletion attack."""
        omit = omit or set()
        entries = []
        for product_id, data in sorted(traces.items()):
            if product_id in omit:
                continue
            trace_signature = signing_key.sign(self._trace_message(product_id, data))
            binding_signature = signing_key.sign(
                self._binding_message(participant_id, product_id, trace_signature)
            )
            entries.append(
                BaselineEntry(
                    participant_id, product_id, trace_signature, binding_signature
                )
            )
        poc = BaselinePoc(participant_id, signing_key.verify_key, tuple(entries))
        dec = BaselineDecommitment(participant_id, signing_key, dict(traces))
        return poc, dec

    def poc_check_wellformed(self, poc: BaselinePoc) -> bool:
        """All the proxy *can* check at submission time: signature validity."""
        for entry in poc.entries:
            message = self._binding_message(
                entry.participant_id, entry.product_id, entry.trace_signature
            )
            if not poc.verify_key.verify(message, entry.binding_signature):
                return False
        return True

    def poc_proof(
        self, dec: BaselineDecommitment, product_id: int, deny: bool = False
    ) -> BaselineProof:
        """Answer a query; ``deny`` models claim-non-processing."""
        data = dec.traces.get(product_id)
        if data is None or deny:
            return BaselineProof(product_id, None, None)
        signature = dec.signing_key.sign(self._trace_message(product_id, data))
        return BaselineProof(product_id, data, signature)

    def poc_verify(
        self, poc: BaselinePoc, product_id: int, proof: BaselineProof
    ) -> str:
        """The proxy's two-case check from Section II.C.

        Returns "trace" (valid response), "dishonest" (refusal despite a
        listed entry), or "no-evidence" (refusal and nothing in the POC —
        the case the strawman cannot resolve).
        """
        listed = product_id in poc.listed_ids()
        if proof.trace_data is not None and proof.trace_signature is not None:
            message = self._trace_message(product_id, proof.trace_data)
            if poc.verify_key.verify(message, proof.trace_signature):
                return "trace"
            return "dishonest"
        if listed:
            return "dishonest"
        return "no-evidence"


def generate_baseline_keypair(curve: BNCurve, rng: DeterministicRng) -> SigningKey:
    """Convenience wrapper mirroring :mod:`repro.crypto.signatures`."""
    from ..crypto.signatures import generate_keypair

    return generate_keypair(curve, rng)
