"""The POC scheme of the paper's Table I.

A product ownership credential (POC) is a participant's compact commitment
to its set of RFID-traces.  The four algorithms map one-to-one onto the
paper:

* ``PS-Gen(lambda) -> ps``       : :meth:`PocScheme.ps_gen`
* ``POC-Agg(D, v, ps)``          : :meth:`PocScheme.poc_agg`
* ``POC-Proof(ps, POC, DPOC, D, id)`` : :meth:`PocScheme.poc_proof`
* ``POC-Verify(ps, POC, id, pi)``: :meth:`PocScheme.poc_verify`

The scheme is generic over the EDB backend; with the ZK backend it is the
paper's construction, with the Merkle backend it is the non-private
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from ..crypto.rng import DeterministicRng
from ..engine.tasks import poc_agg_task
from ..zkedb.backend import EdbBackend
from ..zkedb.edb import ElementaryDatabase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.engine import ProofEngine

__all__ = [
    "PocCredential",
    "PocDecommitment",
    "PocProof",
    "PocVerifyResult",
    "PocScheme",
    "decode_poc_proof",
]

OWNERSHIP = "Ow-proof"
NON_OWNERSHIP = "Now-proof"


@dataclass(frozen=True)
class PocCredential:
    """POC_v = v || Com: the participant identity bound to its commitment."""

    participant_id: str
    commitment: Any

    def to_bytes(self, backend: EdbBackend) -> bytes:
        ident = self.participant_id.encode()
        return (
            len(ident).to_bytes(2, "big")
            + ident
            + backend.commitment_bytes(self.commitment)
        )


@dataclass
class PocDecommitment:
    """DPOC_v: the private decommitment the participant stores."""

    participant_id: str
    dec: Any


@dataclass(frozen=True)
class PocProof:
    """An ownership or non-ownership proof, tagged as in Table I."""

    kind: str  # OWNERSHIP or NON_OWNERSHIP
    inner: Any

    def to_bytes(self, backend: EdbBackend) -> bytes:
        tag = b"\x01" if self.kind == OWNERSHIP else b"\x02"
        return tag + backend.proof_bytes(self.inner)

    def size_bytes(self, backend: EdbBackend) -> int:
        return len(self.to_bytes(backend))


@dataclass(frozen=True)
class PocVerifyResult:
    """POC-Verify output: a recovered trace, 'valid', or 'bad'."""

    status: str  # "trace" | "valid" | "bad"
    trace: tuple[int, bytes] | None = None

    @property
    def is_bad(self) -> bool:
        return self.status == "bad"


_BAD = PocVerifyResult("bad")


class PocScheme:
    """The POC scheme over a pluggable EDB backend."""

    def __init__(
        self,
        backend: EdbBackend,
        key_bits: int = 128,
        engine: "ProofEngine | None" = None,
    ):
        self.backend = backend
        self.key_bits = key_bits
        self.engine = engine

    @classmethod
    def ps_gen(
        cls,
        backend: EdbBackend,
        key_bits: int = 128,
        engine: "ProofEngine | None" = None,
    ) -> "PocScheme":
        """PS-Gen: wrap the (already trusted-setup) CRS as public parameters."""
        return cls(backend, key_bits, engine=engine)

    def _engine(self) -> "ProofEngine":
        if self.engine is not None:
            return self.engine
        backend_engine = getattr(self.backend, "engine", None)
        if backend_engine is not None:
            return backend_engine
        from ..engine.engine import default_engine

        return default_engine()

    def poc_agg(
        self,
        traces: Mapping[int, bytes],
        participant_id: str,
        rng: DeterministicRng,
        prior: PocDecommitment | None = None,
    ) -> tuple[PocCredential, PocDecommitment]:
        """POC-Agg: aggregate a participant's RFID-traces into a POC pair.

        ``prior`` (the participant's previous DPOC, typically from the last
        distribution task) enables incremental recommitment on backends
        that support it: only the traces that changed since the prior
        commit are re-committed, which turns the per-task POC cost from
        O(all traces) into O(new traces).  Backends without
        ``commit_incremental`` fall back to a full commit.
        """
        database = ElementaryDatabase(self.key_bits)
        for product_id, data in traces.items():
            database.put(product_id, data)
        commit_incremental = (
            getattr(self.backend, "commit_incremental", None)
            if prior is not None
            else None
        )
        if commit_incremental is not None:
            commitment, dec = commit_incremental(database, rng, prior.dec)
        else:
            commitment, dec = self.backend.commit(database, rng)
        return (
            PocCredential(participant_id, commitment),
            PocDecommitment(participant_id, dec),
        )

    def poc_agg_many(
        self,
        traces_by_participant: Mapping[str, Mapping[int, bytes]],
        rng: DeterministicRng | None = None,
        rngs: Mapping[str, DeterministicRng] | None = None,
        priors: Mapping[str, PocDecommitment | None] | None = None,
    ) -> dict[str, tuple[PocCredential, PocDecommitment]]:
        """POC-Agg for many participants at once, in parallel if configured.

        Per-participant randomness comes from ``rngs[pid]`` when supplied,
        else from ``rng.fork(f"poc/{pid}")`` — deterministic either way, so
        serial and parallel execution produce identical credentials.
        ``priors`` optionally maps participants to their previous DPOCs for
        incremental recommitment (see :meth:`poc_agg`).
        """
        if rngs is None:
            if rng is None:
                raise ValueError("poc_agg_many needs either rng or rngs")
            rngs = {
                pid: rng.fork(f"poc/{pid}") for pid in traces_by_participant
            }
        priors = priors or {}
        payloads = [
            (pid, dict(traces_by_participant[pid]), rngs[pid], priors.get(pid))
            for pid in sorted(traces_by_participant)
        ]
        engine = self._engine()
        if engine.workers <= 1 or len(payloads) < 2:
            results = [poc_agg_task(self, payload) for payload in payloads]
        else:
            results = engine.map_tasks(poc_agg_task, payloads, shared=self)
        return {poc.participant_id: (poc, dpoc) for poc, dpoc in results}

    def poc_proof(self, dpoc: PocDecommitment, product_id: int) -> PocProof:
        """POC-Proof: an ownership or non-ownership proof for ``product_id``."""
        inner = self.backend.prove(dpoc.dec, product_id)
        kind = OWNERSHIP if self._proof_claims_ownership(inner) else NON_OWNERSHIP
        return PocProof(kind, inner)

    @staticmethod
    def _proof_claims_ownership(inner: Any) -> bool:
        # Both backends' ownership proofs carry the value; non-ownership
        # proofs either lack the attribute or carry None.
        return getattr(inner, "value", None) is not None

    def poc_verify(
        self, poc: PocCredential, product_id: int, proof: PocProof
    ) -> PocVerifyResult:
        """POC-Verify: recover a trace, accept a non-ownership, or reject."""
        outcome = self.backend.verify(poc.commitment, product_id, proof.inner)
        return self._map_outcome(proof.kind, product_id, outcome)

    def poc_verify_many(
        self, items: Sequence[tuple[PocCredential, int, PocProof]]
    ) -> list[PocVerifyResult]:
        """POC-Verify a whole round of (POC, id, proof) items at once.

        Backends that batch (the ZK-EDB folds all pairing equations into
        one randomized check) amortize a round's verification; others fall
        back to per-item verification with identical results.
        """
        items = list(items)
        verify_many = getattr(self.backend, "verify_many", None)
        if verify_many is None:
            return [self.poc_verify(poc, pid, proof) for poc, pid, proof in items]
        outcomes = verify_many(
            [(poc.commitment, pid, proof.inner) for poc, pid, proof in items]
        )
        return [
            self._map_outcome(proof.kind, pid, outcome)
            for (_, pid, proof), outcome in zip(items, outcomes)
        ]

    @staticmethod
    def _map_outcome(kind: str, product_id: int, outcome) -> PocVerifyResult:
        if outcome.is_bad:
            return _BAD
        if kind == OWNERSHIP:
            if not outcome.is_value:
                return _BAD
            return PocVerifyResult("trace", (product_id, outcome.value))
        if kind == NON_OWNERSHIP:
            if not outcome.is_absent:
                return _BAD
            return PocVerifyResult("valid")
        return _BAD


def decode_poc_proof(backend: EdbBackend, data: bytes) -> PocProof:
    """Parse a tagged POC proof from wire bytes."""
    if not data:
        raise ValueError("empty proof bytes")
    if data[0] == 1:
        kind = OWNERSHIP
    elif data[0] == 2:
        kind = NON_OWNERSHIP
    else:
        raise ValueError(f"unknown POC proof tag {data[0]}")
    return PocProof(kind, backend.decode_proof_bytes(data[1:]))
