"""Product ownership credentials (POC) — the paper's Table I scheme.

`PocScheme` wraps an EDB backend into the four-algorithm POC interface;
`BaselinePocScheme` is the signature-list strawman of Section II.C that
DE-Sword's threat model defeats.
"""

from .baseline import (
    BaselineDecommitment,
    BaselineEntry,
    BaselinePoc,
    BaselinePocScheme,
    BaselineProof,
)
from .scheme import (
    NON_OWNERSHIP,
    OWNERSHIP,
    PocCredential,
    PocDecommitment,
    PocProof,
    PocScheme,
    PocVerifyResult,
)

__all__ = [
    "PocScheme",
    "PocCredential",
    "PocDecommitment",
    "PocProof",
    "PocVerifyResult",
    "OWNERSHIP",
    "NON_OWNERSHIP",
    "BaselinePocScheme",
    "BaselinePoc",
    "BaselineDecommitment",
    "BaselineEntry",
    "BaselineProof",
]
