"""Pedersen commitments over G1.

A small building block: perfectly hiding, computationally binding
commitments used by tests as a reference point and by the baseline
comparisons.  The mercurial schemes in this package are structurally
Pedersen-like, so having the plain scheme alongside them makes the
mercurial extensions easy to audit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.bn import BNCurve
from ..crypto.curve import G1Point
from ..crypto.rng import DeterministicRng

__all__ = ["PedersenParams", "PedersenCommitment"]


@dataclass(frozen=True)
class PedersenCommitment:
    """A commitment C = g^m * h^r."""

    point: G1Point


class PedersenParams:
    """Public parameters (g, h) with log_g(h) unknown."""

    __slots__ = ("curve", "g", "h")

    def __init__(self, curve: BNCurve, h: G1Point):
        self.curve = curve
        self.g = curve.g1.generator
        self.h = h

    @classmethod
    def generate(cls, curve: BNCurve, label: bytes = b"pedersen-h") -> "PedersenParams":
        """Nothing-up-my-sleeve parameters via hash-to-curve."""
        return cls(curve, curve.hash_to_g1(label))

    def commit(self, message: int, rng: DeterministicRng) -> tuple[PedersenCommitment, int]:
        """Commit to ``message``; returns (commitment, opening randomness)."""
        randomness = self.curve.random_scalar(rng)
        return self.commit_with(message, randomness), randomness

    def commit_with(self, message: int, randomness: int) -> PedersenCommitment:
        g1 = self.curve.g1
        point = g1.multi_mul([self.g, self.h], [message % self.curve.r, randomness])
        return PedersenCommitment(point)

    def verify(self, commitment: PedersenCommitment, message: int, randomness: int) -> bool:
        return self.commit_with(message, randomness).point == commitment.point
