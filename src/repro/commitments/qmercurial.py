"""Trapdoor q-mercurial commitments (qTMC).

A concise mercurial *vector* commitment in the style of Libert-Yung
(TCC 2010): commit to a sequence of q messages at once, with O(1)-size
openings per position and the same hard/soft mercurial semantics as the
scalar TMC scheme.  The paper uses this for the *internal* nodes of the
ZK-EDB tree; its cost dominates the POC scheme (Section VI.A, Figure 4).

Construction, over a BN pairing e : G1 x G2 -> GT with generators g, gh
and a trusted-setup secret alpha (the common reference string keeps
g_i = g^(alpha^i) for i in [1, 2q] \\ {q+1} and gh_i for i in [1, q]):

* ``HardCommit(m_1..m_q; gamma, rho)``:
      C1 = g_1^rho,   C2 = (g^gamma * prod_j g_{q+1-j}^{m_j})^rho
* Opening at position i (1-indexed):
      W  = (g_i^gamma * prod_{j != i} g_{q+1-j+i}^{m_j})^rho
  verified by the pairing equation
      e(C2, gh_i) == e(W, gh) * e(C1, gh_q)^{m_i}.
  A *hard* opening additionally reveals rho and the verifier checks
  C1 = g_1^rho (and rho != 0); a *tease* reveals only (m_i, W).
* ``SoftCommit(; s, c)``: C1 = g^s, C2 = g^c — teasable at any position to
  any message with W = g_i^c * g_q^{-s m}, but never hard-openable
  (that would require rho = s/alpha).

Binding rests on the q-BDHE-style gap: the CRS deliberately omits
g^(alpha^{q+1}), which is exactly the element needed to tease a hard
commitment to a different message.

Cost shapes (reproduced in benchmarks/test_bench_qtmc.py, paper Fig. 4):
key generation and everything touching a hard commitment is Theta(q);
everything touching a soft commitment is O(1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..crypto.bn import BNCurve
from ..crypto.curve import G1Point, G2Point
from ..crypto.pairing import pairing_product_is_one
from ..crypto.rng import DeterministicRng
from ..crypto.serialize import ByteReader, encode_scalar, g1_to_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.engine import ProofEngine

__all__ = [
    "QtmcParams",
    "QtmcCommitment",
    "QtmcHardDecommit",
    "QtmcSoftDecommit",
    "QtmcHardOpening",
    "QtmcTease",
]


@dataclass(frozen=True)
class QtmcCommitment:
    """The public commitment pair (C1, C2)."""

    c1: G1Point
    c2: G1Point

    def to_bytes(self, curve: BNCurve) -> bytes:
        return g1_to_bytes(curve, self.c1) + g1_to_bytes(curve, self.c2)


@dataclass(frozen=True)
class QtmcHardDecommit:
    """Private state of a hard q-commitment."""

    messages: tuple[int, ...]
    gamma: int
    rho: int


@dataclass(frozen=True)
class QtmcSoftDecommit:
    """Private state of a soft q-commitment."""

    s: int
    c: int


@dataclass(frozen=True)
class QtmcHardOpening:
    """Hard opening of position ``index`` to ``message``."""

    index: int
    message: int
    witness: G1Point
    rho: int

    def to_bytes(self, curve: BNCurve) -> bytes:
        return (
            encode_scalar(curve, self.message)
            + g1_to_bytes(curve, self.witness)
            + encode_scalar(curve, self.rho)
        )

    @classmethod
    def from_bytes(cls, curve: BNCurve, data: bytes, index: int) -> "QtmcHardOpening":
        """Inverse of :meth:`to_bytes`; the position is carried externally."""
        reader = ByteReader(data)
        message = reader.take_scalar(curve)
        witness = reader.take_g1(curve)
        rho = reader.take_scalar(curve)
        reader.expect_end()
        return cls(index, message, witness, rho)


@dataclass(frozen=True)
class QtmcTease:
    """Soft opening (tease) of position ``index`` to ``message``."""

    index: int
    message: int
    witness: G1Point

    def to_bytes(self, curve: BNCurve) -> bytes:
        return encode_scalar(curve, self.message) + g1_to_bytes(curve, self.witness)

    @classmethod
    def from_bytes(cls, curve: BNCurve, data: bytes, index: int) -> "QtmcTease":
        """Inverse of :meth:`to_bytes`; the position is carried externally."""
        reader = ByteReader(data)
        message = reader.take_scalar(curve)
        witness = reader.take_g1(curve)
        reader.expect_end()
        return cls(index, message, witness)


class QtmcParams:
    """CRS for width-q mercurial vector commitments."""

    __slots__ = ("curve", "q", "g_powers", "gh", "gh_powers", "trapdoor", "engine")

    def __init__(
        self,
        curve: BNCurve,
        q: int,
        g_powers: dict[int, G1Point],
        gh: G2Point,
        gh_powers: dict[int, G2Point],
        trapdoor: int | None = None,
        engine: "ProofEngine | None" = None,
    ):
        self.curve = curve
        self.q = q
        self.g_powers = g_powers
        self.gh = gh
        self.gh_powers = gh_powers
        self.trapdoor = trapdoor
        self.engine = engine

    def _engine(self) -> "ProofEngine":
        if self.engine is None:
            from ..engine.engine import default_engine

            self.engine = default_engine()
        return self.engine

    @classmethod
    def generate(
        cls,
        curve: BNCurve,
        q: int,
        rng: DeterministicRng,
        with_trapdoor: bool = False,
        engine: "ProofEngine | None" = None,
    ) -> "QtmcParams":
        """qKGen: trusted setup producing the CRS (Theta(q) group work).

        In DE-Sword the proxy plays the honest party running this once; the
        secret alpha is discarded unless ``with_trapdoor`` (simulator use).
        """
        if q < 1:
            raise ValueError("q must be at least 1")
        alpha = curve.random_scalar(rng)
        g_powers: dict[int, G1Point] = {}
        power = 1
        for i in range(1, 2 * q + 1):
            power = power * alpha % curve.r
            if i == q + 1:
                continue  # the q-BDHE gap element, deliberately omitted
            g_powers[i] = curve.g1.mul_gen(power)
        gh_powers: dict[int, G2Point] = {}
        power = 1
        for i in range(1, q + 1):
            power = power * alpha % curve.r
            gh_powers[i] = curve.g2.mul_gen(power)
        return cls(
            curve,
            q,
            g_powers,
            curve.g2.generator,
            gh_powers,
            trapdoor=alpha if with_trapdoor else None,
            engine=engine,
        )

    def _check_index(self, index: int) -> int:
        if not 0 <= index < self.q:
            raise IndexError(f"position {index} outside [0, {self.q})")
        return index + 1  # 1-indexed in the algebra

    def warm_tables(self) -> None:
        """Prime the engine cache for this CRS's multi-exp bases.

        Builds the Straus small tables for every ``g_i`` (narrow widths) and
        the Pippenger :class:`~repro.crypto.curve.MsmBasis` for the
        full-width hard-commit basis (wide widths), so the first real
        commitment after setup pays no table-construction cost.  Idempotent;
        all state lives in the engine's process-wide cache.
        """
        engine = self._engine()
        g1 = self.curve.g1
        for point in (g1.generator, *self.g_powers.values()):
            engine.cache.small_table(g1, point)
        commit_basis = [self.curve.g1.generator] + [
            self.g_powers[self.q + 1 - j] for j in range(1, self.q + 1)
        ]
        engine.cache.msm_basis(g1, commit_basis)

    # -- commitment algorithms -------------------------------------------------

    def hard_commit(
        self, messages: list[int] | tuple[int, ...], rng: DeterministicRng
    ) -> tuple[QtmcCommitment, QtmcHardDecommit]:
        """qHCom: hard-commit to a sequence of up to q messages."""
        if len(messages) > self.q:
            raise ValueError("too many messages for this CRS width")
        r = self.curve.r
        padded = tuple(m % r for m in messages) + (0,) * (self.q - len(messages))
        gamma = self.curve.random_scalar(rng)
        rho = self.curve.random_scalar(rng)
        points = [self.curve.g1.generator]
        scalars = [gamma * rho % r]
        for j in range(1, self.q + 1):
            if padded[j - 1]:
                points.append(self.g_powers[self.q + 1 - j])
                scalars.append(padded[j - 1] * rho % r)
        engine = self._engine()
        c2 = engine.multi_mul(self.curve.g1, points, scalars)
        c1 = engine.fixed_mul(self.curve.g1, self.g_powers[1], rho)
        return QtmcCommitment(c1, c2), QtmcHardDecommit(padded, gamma, rho)

    def soft_commit(
        self, rng: DeterministicRng
    ) -> tuple[QtmcCommitment, QtmcSoftDecommit]:
        """qSCom: O(1) soft commitment, teasable to anything."""
        s = self.curve.random_scalar(rng)
        c = self.curve.random_scalar(rng)
        g1 = self.curve.g1
        return QtmcCommitment(g1.mul_gen(s), g1.mul_gen(c)), QtmcSoftDecommit(s, c)

    def _witness_hard(self, decommit: QtmcHardDecommit, i: int) -> G1Point:
        """W = (g_i^gamma * prod_{j != i} g_{q+1-j+i}^{m_j})^rho."""
        r = self.curve.r
        points = [self.g_powers[i]]
        scalars = [decommit.gamma * decommit.rho % r]
        for j in range(1, self.q + 1):
            if j == i or not decommit.messages[j - 1]:
                continue
            points.append(self.g_powers[self.q + 1 - j + i])
            scalars.append(decommit.messages[j - 1] * decommit.rho % r)
        return self._engine().multi_mul(self.curve.g1, points, scalars)

    def hard_open(self, decommit: QtmcHardDecommit, index: int) -> QtmcHardOpening:
        """qHOpen: binding opening of one position (Theta(q) group work)."""
        i = self._check_index(index)
        witness = self._witness_hard(decommit, i)
        return QtmcHardOpening(index, decommit.messages[index], witness, decommit.rho)

    def tease_hard(self, decommit: QtmcHardDecommit, index: int) -> QtmcTease:
        """qSOpen of a hard commitment: same witness, rho withheld."""
        i = self._check_index(index)
        witness = self._witness_hard(decommit, i)
        return QtmcTease(index, decommit.messages[index], witness)

    def tease_soft(
        self, decommit: QtmcSoftDecommit, index: int, message: int
    ) -> QtmcTease:
        """qSOpen of a soft commitment: O(1), any message at any position."""
        i = self._check_index(index)
        r = self.curve.r
        message %= r
        witness = self._engine().multi_mul(
            self.curve.g1,
            [self.g_powers[i], self.g_powers[self.q]],
            [decommit.c, (-decommit.s * message) % r],
        )
        return QtmcTease(index, message, witness)

    # -- verification ------------------------------------------------------------

    def tease_pairing_pairs(
        self, commitment: QtmcCommitment, tease: QtmcTease
    ) -> list[tuple[G1Point, G2Point]]:
        """The pairs whose pairing product must equal one for a valid tease.

        Exposed so higher layers (ZK-EDB verification) can batch many checks
        into a single final exponentiation with random linear coefficients.
        """
        i = self._check_index(tease.index)
        g1 = self.curve.g1
        return [
            (commitment.c2, self.gh_powers[i]),
            (g1.neg(tease.witness), self.gh),
            (g1.neg(g1.mul(commitment.c1, tease.message)), self.gh_powers[self.q]),
        ]

    def verify_tease(self, commitment: QtmcCommitment, tease: QtmcTease) -> bool:
        """qVerSOpen: e(C2, gh_i) == e(W, gh) * e(C1, gh_q)^m."""
        if commitment.c2 is None:
            return False
        return pairing_product_is_one(
            self.curve, self.tease_pairing_pairs(commitment, tease)
        )

    def verify_hard_open(
        self, commitment: QtmcCommitment, opening: QtmcHardOpening
    ) -> bool:
        """qVerHOpen: the tease equation plus the hardness check C1 = g_1^rho."""
        if opening.rho % self.curve.r == 0:
            return False
        if self._engine().fixed_mul(self.curve.g1, self.g_powers[1], opening.rho) != commitment.c1:
            return False
        tease = QtmcTease(opening.index, opening.message, opening.witness)
        return self.verify_tease(commitment, tease)

    def validate_crs(self) -> bool:
        """Check the CRS is a consistent alpha-power ladder.

        Verifies e(g_i, gh_1) == e(g_{i+1}, gh) across the G1 ladder (the
        q-BDHE gap element and its neighbour excluded) and
        e(g_i, gh) == e(g_1, gh_i) across the G2 ladder.  All pairings are
        constants of the CRS, so they come from (and prime) the engine's
        memoized pairing cache.
        """
        engine = self._engine()
        curve = self.curve
        for i in range(1, 2 * self.q):
            if i == self.q or i == self.q + 1:
                continue  # either g_{i+1} or g_i straddles the omitted power
            lhs = engine.constant_pairing(curve, self.g_powers[i], self.gh_powers[1])
            rhs = engine.constant_pairing(curve, self.g_powers[i + 1], self.gh)
            if lhs != rhs:
                return False
        g = curve.g1.generator
        for i in range(1, self.q + 1):
            lhs = engine.constant_pairing(curve, g, self.gh_powers[i])
            rhs = engine.constant_pairing(curve, self.g_powers[i], self.gh)
            if lhs != rhs:
                return False
        return True

    def fake_commit(
        self, rng: DeterministicRng
    ) -> tuple[QtmcCommitment, QtmcSoftDecommit]:
        """A soft commitment the trapdoor holder can later hard-open."""
        if self.trapdoor is None:
            raise ValueError("fake_commit requires the trapdoor")
        return self.soft_commit(rng)

    def equivocate_hard(
        self, decommit: QtmcSoftDecommit, index: int, message: int
    ) -> QtmcHardOpening:
        """Hard-open a fake commitment to any message (trapdoor only)."""
        if self.trapdoor is None:
            raise ValueError("equivocation requires the trapdoor")
        i = self._check_index(index)
        r = self.curve.r
        message %= r
        alpha = self.trapdoor
        rho = decommit.s * pow(alpha, -1, r) % r
        w_exp = (decommit.c * pow(alpha, i, r) - decommit.s * pow(alpha, self.q, r) * message) % r
        witness = self.curve.g1.mul_gen(w_exp)
        return QtmcHardOpening(index, message, witness, rho)

    def equivocate_tease(
        self, decommit: QtmcSoftDecommit, index: int, message: int
    ) -> QtmcTease:
        """Tease a fake commitment (identical to an honest soft tease)."""
        return self.tease_soft(decommit, index, message)
