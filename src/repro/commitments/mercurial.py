"""Trapdoor mercurial commitments (TMC).

The discrete-log construction of Chase, Healy, Lysyanskaya, Malkin and
Reyzin (EUROCRYPT 2005), which the paper uses for the *leaf* nodes of the
ZK-EDB tree.  A mercurial commitment supports two flavours:

* **hard** commitments bind like ordinary commitments: they can be
  hard-opened and soft-opened (*teased*) only to the committed message;
* **soft** commitments can never be hard-opened, but can be teased to any
  message.

Construction (group G1 of order r with generators g and h = g^alpha,
alpha unknown):

* ``HardCommit(m; r0, r1)``:  C0 = h^r0,  C1 = g^m * C0^r1
* ``SoftCommit(; s0, s1)``:   C0 = g^s0,  C1 = g^s1
* ``Tease`` of a hard commitment: reveal tau = r1; of a soft commitment to
  any m: tau = (s1 - m)/s0.
* ``HardOpen``: reveal (m, r0, r1); the verifier additionally checks
  C0 = h^r0, which a soft committer cannot satisfy without solving DL.

With the trapdoor alpha the simulator can produce *fake* commitments that
look hard yet open to anything (`fake_commit` / `equivocate_*`) — this is
what gives the ZK-EDB its zero-knowledge simulator, and the tests use it
to demonstrate the trapdoor is real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..crypto.bn import BNCurve
from ..crypto.curve import G1Point
from ..crypto.rng import DeterministicRng
from ..crypto.serialize import encode_scalar, g1_to_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.engine import ProofEngine

__all__ = [
    "TmcParams",
    "TmcCommitment",
    "TmcHardDecommit",
    "TmcSoftDecommit",
    "TmcHardOpening",
    "TmcTease",
]


@dataclass(frozen=True)
class TmcCommitment:
    """The public commitment pair (C0, C1)."""

    c0: G1Point
    c1: G1Point

    def to_bytes(self, curve: BNCurve) -> bytes:
        return g1_to_bytes(curve, self.c0) + g1_to_bytes(curve, self.c1)


@dataclass(frozen=True)
class TmcHardDecommit:
    """Private state for a hard commitment."""

    message: int
    r0: int
    r1: int


@dataclass(frozen=True)
class TmcSoftDecommit:
    """Private state for a soft commitment."""

    s0: int
    s1: int


@dataclass(frozen=True)
class TmcHardOpening:
    """A hard opening (binds the committer to having hard-committed m)."""

    message: int
    r0: int
    r1: int

    def to_bytes(self, curve: BNCurve) -> bytes:
        return (
            encode_scalar(curve, self.message)
            + encode_scalar(curve, self.r0)
            + encode_scalar(curve, self.r1)
        )


@dataclass(frozen=True)
class TmcTease:
    """A soft opening (tease) to a message."""

    message: int
    tau: int

    def to_bytes(self, curve: BNCurve) -> bytes:
        return encode_scalar(curve, self.message) + encode_scalar(curve, self.tau)


class TmcParams:
    """Public parameters for the TMC scheme, optionally with trapdoor."""

    __slots__ = ("curve", "g", "h", "trapdoor", "engine")

    def __init__(
        self,
        curve: BNCurve,
        h: G1Point,
        trapdoor: int | None = None,
        engine: "ProofEngine | None" = None,
    ):
        self.curve = curve
        self.g = curve.g1.generator
        self.h = h
        self.trapdoor = trapdoor
        self.engine = engine

    def _engine(self) -> "ProofEngine":
        if self.engine is None:
            from ..engine.engine import default_engine

            self.engine = default_engine()
        return self.engine

    @classmethod
    def generate(
        cls,
        curve: BNCurve,
        rng: DeterministicRng | None = None,
        with_trapdoor: bool = False,
        engine: "ProofEngine | None" = None,
    ) -> "TmcParams":
        """Generate parameters.

        Without trapdoor, h is derived by hash-to-curve (nothing up my
        sleeve).  With trapdoor, h = g^alpha and alpha is retained — only
        the zero-knowledge simulator should do this.
        """
        if with_trapdoor:
            if rng is None:
                raise ValueError("trapdoor generation needs randomness")
            alpha = curve.random_scalar(rng)
            return cls(curve, curve.g1.mul_gen(alpha), trapdoor=alpha, engine=engine)
        return cls(curve, curve.hash_to_g1(b"repro/tmc-h"), engine=engine)

    # -- the seven algorithms ------------------------------------------------

    def hard_commit(
        self, message: int, rng: DeterministicRng
    ) -> tuple[TmcCommitment, TmcHardDecommit]:
        """HCom: commit to ``message`` so that only m can ever be opened."""
        r0 = self.curve.random_scalar(rng)
        r1 = self.curve.random_scalar(rng)
        g1 = self.curve.g1
        c0 = self._engine().fixed_mul(g1, self.h, r0)
        c1 = g1.add(g1.mul_gen(message % self.curve.r), g1.mul(c0, r1))
        return TmcCommitment(c0, c1), TmcHardDecommit(message % self.curve.r, r0, r1)

    def soft_commit(
        self, rng: DeterministicRng
    ) -> tuple[TmcCommitment, TmcSoftDecommit]:
        """SCom: commit to nothing; teasable to anything, never hard-opened."""
        s0 = self.curve.random_scalar(rng)
        s1 = self.curve.random_scalar(rng)
        g1 = self.curve.g1
        return TmcCommitment(g1.mul_gen(s0), g1.mul_gen(s1)), TmcSoftDecommit(s0, s1)

    def hard_open(self, decommit: TmcHardDecommit) -> TmcHardOpening:
        """HOpen: produce the binding opening of a hard commitment."""
        return TmcHardOpening(decommit.message, decommit.r0, decommit.r1)

    def tease_hard(self, decommit: TmcHardDecommit) -> TmcTease:
        """Tease a hard commitment (necessarily to its committed message)."""
        return TmcTease(decommit.message, decommit.r1)

    def tease_soft(self, decommit: TmcSoftDecommit, message: int) -> TmcTease:
        """Tease a soft commitment to an arbitrary message."""
        message %= self.curve.r
        tau = (decommit.s1 - message) * pow(decommit.s0, -1, self.curve.r) % self.curve.r
        return TmcTease(message, tau)

    def verify_hard_open(
        self, commitment: TmcCommitment, opening: TmcHardOpening
    ) -> bool:
        """VerHardOpen: check both the binding and the hardness condition."""
        g1 = self.curve.g1
        if commitment.c0 is None:
            return False
        if self._engine().fixed_mul(g1, self.h, opening.r0) != commitment.c0:
            return False
        expected = g1.add(
            g1.mul_gen(opening.message % self.curve.r),
            g1.mul(commitment.c0, opening.r1),
        )
        return expected == commitment.c1

    def verify_tease(self, commitment: TmcCommitment, tease: TmcTease) -> bool:
        """VerTease: check C1 = g^m * C0^tau (no hardness requirement)."""
        g1 = self.curve.g1
        expected = g1.add(
            g1.mul_gen(tease.message % self.curve.r),
            g1.mul(commitment.c0, tease.tau),
        )
        return expected == commitment.c1

    # -- trapdoor (simulator) algorithms --------------------------------------

    def fake_commit(
        self, rng: DeterministicRng
    ) -> tuple[TmcCommitment, TmcSoftDecommit]:
        """A commitment the trapdoor holder can later hard-open to anything.

        Identical distribution to a soft commitment; the trapdoor is what
        turns its soft decommit information into hard openings.
        """
        if self.trapdoor is None:
            raise ValueError("fake_commit requires the trapdoor")
        return self.soft_commit(rng)

    def equivocate_hard(
        self, decommit: TmcSoftDecommit, message: int
    ) -> TmcHardOpening:
        """Hard-open a fake commitment to an arbitrary message (trapdoor)."""
        if self.trapdoor is None:
            raise ValueError("equivocation requires the trapdoor")
        message %= self.curve.r
        r = self.curve.r
        # C0 = g^s0 = h^(s0/alpha); C1 = g^s1 = g^m * C0^r1 with
        # r1 = (s1 - m)/s0.
        r0 = decommit.s0 * pow(self.trapdoor, -1, r) % r
        r1 = (decommit.s1 - message) * pow(decommit.s0, -1, r) % r
        return TmcHardOpening(message, r0, r1)

    def equivocate_tease(
        self, decommit: TmcSoftDecommit, message: int
    ) -> TmcTease:
        """Tease a fake commitment (same as teasing a soft commitment)."""
        return self.tease_soft(decommit, message)
