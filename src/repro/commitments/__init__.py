"""Commitment schemes: Pedersen, mercurial (TMC) and q-mercurial (qTMC).

The mercurial schemes are the paper's building blocks for the ZK-EDB: TMC
labels the leaves of the q-ary tree, qTMC labels the internal nodes
(Section VI.A of the paper).
"""

from .mercurial import (
    TmcCommitment,
    TmcHardDecommit,
    TmcHardOpening,
    TmcParams,
    TmcSoftDecommit,
    TmcTease,
)
from .pedersen import PedersenCommitment, PedersenParams
from .qmercurial import (
    QtmcCommitment,
    QtmcHardDecommit,
    QtmcHardOpening,
    QtmcParams,
    QtmcSoftDecommit,
    QtmcTease,
)

__all__ = [
    "PedersenParams",
    "PedersenCommitment",
    "TmcParams",
    "TmcCommitment",
    "TmcHardDecommit",
    "TmcSoftDecommit",
    "TmcHardOpening",
    "TmcTease",
    "QtmcParams",
    "QtmcCommitment",
    "QtmcHardDecommit",
    "QtmcSoftDecommit",
    "QtmcHardOpening",
    "QtmcTease",
]
