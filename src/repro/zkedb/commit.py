"""EDB-commit: build the mercurial commitment tree over a database.

Committed keys get hard TMC leaf commitments; every internal node on a
committed path gets a hard qTMC commitment whose slot j holds the hash of
child j.  Slots pointing outside the committed frontier hold the hash of a
*deterministically derived soft commitment* — derived from a secret
per-commitment seed, so non-ownership proofs can regenerate the exact same
soft subtrees on demand without storing them (and repeated queries yield
consistent proofs, as zero-knowledge requires).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..commitments.mercurial import TmcCommitment, TmcHardDecommit, TmcSoftDecommit
from ..commitments.qmercurial import (
    QtmcCommitment,
    QtmcHardDecommit,
    QtmcHardOpening,
    QtmcSoftDecommit,
)
from ..crypto.hashing import hash_to_int
from ..crypto.rng import DeterministicRng
from ..obs import default_registry
from .edb import ElementaryDatabase
from .params import EdbParams
from .tree import NodePath, digits_for_key, frontier_paths

__all__ = [
    "EdbCommitment",
    "EdbDecommitment",
    "commit_edb",
    "node_message",
    "leaf_message",
    "derive_soft_internal",
    "derive_soft_leaf",
]


def node_message(params: EdbParams, commitment) -> int:
    """The Z_r message an internal slot holds for a child commitment."""
    return hash_to_int(
        b"repro/zkedb-node", commitment.to_bytes(params.curve), params.curve.r
    )


def leaf_message(params: EdbParams, key: int, value: bytes) -> int:
    """The nonzero Z_r message a leaf holds for (key, value).

    Zero is reserved as the paper's bottom (absent key), so the hash is
    mapped into [1, r).
    """
    digest = hash_to_int(
        b"repro/zkedb-leaf",
        key.to_bytes(params.key_bits // 8, "big") + value,
        params.curve.r - 1,
    )
    return digest + 1


def derive_soft_internal(
    params: EdbParams, seed: bytes, path: NodePath
) -> tuple[QtmcCommitment, QtmcSoftDecommit]:
    """The deterministic soft qTMC commitment for an off-frontier node."""
    rng = DeterministicRng(seed + b"/internal/" + repr(path).encode())
    return params.qtmc.soft_commit(rng)


def derive_soft_leaf(
    params: EdbParams, seed: bytes, path: NodePath
) -> tuple[TmcCommitment, TmcSoftDecommit]:
    """The deterministic soft TMC commitment for an off-frontier leaf."""
    rng = DeterministicRng(seed + b"/leaf/" + repr(path).encode())
    return params.tmc.soft_commit(rng)


@dataclass(frozen=True)
class EdbCommitment:
    """The public commitment (the paper's Com): the hard root qTMC pair."""

    root: QtmcCommitment

    def to_bytes(self, params: EdbParams) -> bytes:
        return self.root.to_bytes(params.curve)


@dataclass
class EdbDecommitment:
    """The private decommitment (the paper's Dec).

    Holds the hard frontier (internal node and leaf states) plus the seed
    that regenerates every off-frontier soft commitment on demand.

    ``opening_cache`` memoizes the Theta(q) hard openings of internal
    slots, keyed by ``(node path, slot)``; repeated proofs over shared
    path prefixes reuse them, and incremental recommits only evict the
    entries of nodes they actually recompute.
    """

    database: ElementaryDatabase
    seed: bytes
    internal_nodes: dict[NodePath, tuple[QtmcCommitment, QtmcHardDecommit]] = field(
        default_factory=dict
    )
    leaves: dict[NodePath, tuple[TmcCommitment, TmcHardDecommit, bytes]] = field(
        default_factory=dict
    )
    opening_cache: dict[tuple[NodePath, int], QtmcHardOpening] = field(
        default_factory=dict, repr=False, compare=False
    )

    def invalidate_openings(self, path: NodePath) -> None:
        """Drop memoized openings of the node at ``path`` (it changed)."""
        if not self.opening_cache:
            return
        for key in [k for k in self.opening_cache if k[0] == path]:
            del self.opening_cache[key]


def _slot_messages(params: EdbParams, dec: EdbDecommitment, path: NodePath) -> list[int]:
    """The q slot messages of the node at ``path``, from current dec state.

    Each slot holds the hash of the child's commitment: the stored hard
    state when the child is on the committed frontier, the deterministic
    soft derivation otherwise.
    """
    depth = len(path)
    messages = []
    for slot in range(params.q):
        child_path = path + (slot,)
        if depth + 1 == params.height:
            leaf_state = dec.leaves.get(child_path)
            if leaf_state is not None:
                child_commitment = leaf_state[0]
            else:
                child_commitment, _ = derive_soft_leaf(params, dec.seed, child_path)
        else:
            node_state = dec.internal_nodes.get(child_path)
            if node_state is not None:
                child_commitment = node_state[0]
            else:
                child_commitment, _ = derive_soft_internal(params, dec.seed, child_path)
        messages.append(node_message(params, child_commitment))
    return messages


def commit_edb(
    params: EdbParams,
    database: ElementaryDatabase,
    rng: DeterministicRng,
    engine=None,
    *,
    prior: EdbDecommitment | None = None,
    changed_keys=None,
) -> tuple[EdbCommitment, EdbDecommitment]:
    """The paper's EDB-commit(D, sigma) -> (Com, Dec).

    ``engine`` (optional) binds a :class:`~repro.engine.engine.ProofEngine`
    to the params before committing; omitted, the params' current engine
    (or the process default) is used.

    **Incremental mode**: with ``prior`` (the decommitment of an earlier
    commit over a mostly-equal database), only the root-to-leaf frontier
    of the keys that differ between ``prior.database`` and ``database`` is
    recommitted — O(changed · h) group work instead of O(n · h) — and
    every untouched subtree's hard state (and memoized openings) is
    reused.  ``changed_keys`` may name the dirty set explicitly; it must
    cover every actually-changed key (extra keys are recommitted
    harmlessly) and defaults to the computed database diff.  The prior
    seed is reused so off-frontier soft derivations stay consistent;
    successive commitments of one participant are therefore linkable to
    each other, which matches DE-Sword's per-participant POC model (each
    credential already names its owner) but would be wrong for an
    anonymous committer — use a full commit there.
    """
    if engine is not None:
        params.bind_engine(engine)
    if database.key_bits != params.key_bits:
        raise ValueError("database key domain does not match the parameters")
    if params.key_bits % 8 != 0:
        raise ValueError("key_bits must be byte aligned")
    if prior is not None:
        return _recommit_edb(params, database, rng, prior, changed_keys)
    seed = rng.randbytes(32)
    dec = EdbDecommitment(database.copy(), seed)

    for key, value in database:
        path = digits_for_key(key, params.q, params.height)
        commitment, decommit = params.tmc.hard_commit(
            leaf_message(params, key, value), rng.fork(f"leaf{path}")
        )
        dec.leaves[path] = (commitment, decommit, value)

    # Internal nodes, deepest first, so child commitments exist when the
    # parent's slot messages are assembled.
    key_digit_paths = [digits_for_key(k, params.q, params.height) for k in database.support()]
    for path in frontier_paths(key_digit_paths):
        messages = _slot_messages(params, dec, path)
        commitment, decommit = params.qtmc.hard_commit(messages, rng.fork(f"node{path}"))
        dec.internal_nodes[path] = (commitment, decommit)

    if () not in dec.internal_nodes:
        # Empty database: the root is still a hard commitment, to soft
        # children everywhere, so non-ownership proofs exist for every key.
        messages = _slot_messages(params, dec, ())
        commitment, decommit = params.qtmc.hard_commit(messages, rng.fork("node()"))
        dec.internal_nodes[()] = (commitment, decommit)

    return EdbCommitment(dec.internal_nodes[()][0]), dec


def _recommit_edb(
    params: EdbParams,
    database: ElementaryDatabase,
    rng: DeterministicRng,
    prior: EdbDecommitment,
    changed_keys,
) -> tuple[EdbCommitment, EdbDecommitment]:
    """Dirty-path recommit: redo only the changed keys' frontier."""
    if prior.database.key_bits != params.key_bits:
        raise ValueError("prior decommitment key domain does not match")
    diff = {
        key
        for key in set(prior.database.support()) | set(database.support())
        if prior.database.get(key) != database.get(key)
    }
    if changed_keys is None:
        changed = diff
    else:
        changed = {int(k) for k in changed_keys}
        missing = diff - changed
        if missing:
            raise ValueError(
                f"changed_keys misses modified keys: {sorted(missing)[:5]}"
            )

    dec = EdbDecommitment(
        database.copy(),
        prior.seed,
        dict(prior.internal_nodes),
        dict(prior.leaves),
        dict(prior.opening_cache),
    )
    if not changed:
        return EdbCommitment(dec.internal_nodes[()][0]), dec

    changed_paths = []
    for key in sorted(changed):
        path = digits_for_key(key, params.q, params.height)
        changed_paths.append(path)
        value = database.get(key)
        if value is None:
            dec.leaves.pop(path, None)
        else:
            commitment, decommit = params.tmc.hard_commit(
                leaf_message(params, key, value), rng.fork(f"leaf{path}")
            )
            dec.leaves[path] = (commitment, decommit, value)

    recomputed = 0
    for path in frontier_paths(changed_paths):
        messages = _slot_messages(params, dec, path)
        commitment, decommit = params.qtmc.hard_commit(messages, rng.fork(f"node{path}"))
        dec.internal_nodes[path] = (commitment, decommit)
        dec.invalidate_openings(path)
        recomputed += 1

    metrics = default_registry()
    metrics.counter("edb.recommit.commits").inc()
    metrics.counter("edb.recommit.keys_changed").inc(len(changed))
    metrics.counter("edb.recommit.nodes_recomputed").inc(recomputed)
    metrics.counter("edb.recommit.nodes_reused").inc(
        len(dec.internal_nodes) - recomputed
    )
    return EdbCommitment(dec.internal_nodes[()][0]), dec
