"""EDB-commit: build the mercurial commitment tree over a database.

Committed keys get hard TMC leaf commitments; every internal node on a
committed path gets a hard qTMC commitment whose slot j holds the hash of
child j.  Slots pointing outside the committed frontier hold the hash of a
*deterministically derived soft commitment* — derived from a secret
per-commitment seed, so non-ownership proofs can regenerate the exact same
soft subtrees on demand without storing them (and repeated queries yield
consistent proofs, as zero-knowledge requires).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..commitments.mercurial import TmcCommitment, TmcHardDecommit, TmcSoftDecommit
from ..commitments.qmercurial import (
    QtmcCommitment,
    QtmcHardDecommit,
    QtmcSoftDecommit,
)
from ..crypto.hashing import hash_to_int
from ..crypto.rng import DeterministicRng
from .edb import ElementaryDatabase
from .params import EdbParams
from .tree import NodePath, digits_for_key, frontier_paths

__all__ = [
    "EdbCommitment",
    "EdbDecommitment",
    "commit_edb",
    "node_message",
    "leaf_message",
    "derive_soft_internal",
    "derive_soft_leaf",
]


def node_message(params: EdbParams, commitment) -> int:
    """The Z_r message an internal slot holds for a child commitment."""
    return hash_to_int(
        b"repro/zkedb-node", commitment.to_bytes(params.curve), params.curve.r
    )


def leaf_message(params: EdbParams, key: int, value: bytes) -> int:
    """The nonzero Z_r message a leaf holds for (key, value).

    Zero is reserved as the paper's bottom (absent key), so the hash is
    mapped into [1, r).
    """
    digest = hash_to_int(
        b"repro/zkedb-leaf",
        key.to_bytes(params.key_bits // 8, "big") + value,
        params.curve.r - 1,
    )
    return digest + 1


def derive_soft_internal(
    params: EdbParams, seed: bytes, path: NodePath
) -> tuple[QtmcCommitment, QtmcSoftDecommit]:
    """The deterministic soft qTMC commitment for an off-frontier node."""
    rng = DeterministicRng(seed + b"/internal/" + repr(path).encode())
    return params.qtmc.soft_commit(rng)


def derive_soft_leaf(
    params: EdbParams, seed: bytes, path: NodePath
) -> tuple[TmcCommitment, TmcSoftDecommit]:
    """The deterministic soft TMC commitment for an off-frontier leaf."""
    rng = DeterministicRng(seed + b"/leaf/" + repr(path).encode())
    return params.tmc.soft_commit(rng)


@dataclass(frozen=True)
class EdbCommitment:
    """The public commitment (the paper's Com): the hard root qTMC pair."""

    root: QtmcCommitment

    def to_bytes(self, params: EdbParams) -> bytes:
        return self.root.to_bytes(params.curve)


@dataclass
class EdbDecommitment:
    """The private decommitment (the paper's Dec).

    Holds the hard frontier (internal node and leaf states) plus the seed
    that regenerates every off-frontier soft commitment on demand.
    """

    database: ElementaryDatabase
    seed: bytes
    internal_nodes: dict[NodePath, tuple[QtmcCommitment, QtmcHardDecommit]] = field(
        default_factory=dict
    )
    leaves: dict[NodePath, tuple[TmcCommitment, TmcHardDecommit, bytes]] = field(
        default_factory=dict
    )


def commit_edb(
    params: EdbParams,
    database: ElementaryDatabase,
    rng: DeterministicRng,
    engine=None,
) -> tuple[EdbCommitment, EdbDecommitment]:
    """The paper's EDB-commit(D, sigma) -> (Com, Dec).

    ``engine`` (optional) binds a :class:`~repro.engine.engine.ProofEngine`
    to the params before committing; omitted, the params' current engine
    (or the process default) is used.
    """
    if engine is not None:
        params.bind_engine(engine)
    if database.key_bits != params.key_bits:
        raise ValueError("database key domain does not match the parameters")
    if params.key_bits % 8 != 0:
        raise ValueError("key_bits must be byte aligned")
    seed = rng.randbytes(32)
    dec = EdbDecommitment(database.copy(), seed)

    leaf_paths: dict[NodePath, int] = {}
    for key, value in database:
        path = digits_for_key(key, params.q, params.height)
        commitment, decommit = params.tmc.hard_commit(
            leaf_message(params, key, value), rng.fork(f"leaf{path}")
        )
        dec.leaves[path] = (commitment, decommit, value)
        leaf_paths[path] = key

    # Internal nodes, deepest first, so child commitments exist when the
    # parent's slot messages are assembled.
    key_digit_paths = [digits_for_key(k, params.q, params.height) for k in database.support()]
    for path in frontier_paths(key_digit_paths):
        depth = len(path)
        messages = []
        for slot in range(params.q):
            child_path = path + (slot,)
            if depth + 1 == params.height:
                if child_path in dec.leaves:
                    child_commitment = dec.leaves[child_path][0]
                else:
                    child_commitment, _ = derive_soft_leaf(params, seed, child_path)
            else:
                if child_path in dec.internal_nodes:
                    child_commitment = dec.internal_nodes[child_path][0]
                else:
                    child_commitment, _ = derive_soft_internal(params, seed, child_path)
            messages.append(node_message(params, child_commitment))
        commitment, decommit = params.qtmc.hard_commit(messages, rng.fork(f"node{path}"))
        dec.internal_nodes[path] = (commitment, decommit)

    if () not in dec.internal_nodes:
        # Empty database: the root is still a hard commitment, to soft
        # children everywhere, so non-ownership proofs exist for every key.
        messages = [
            node_message(
                params,
                (derive_soft_leaf if params.height == 1 else derive_soft_internal)(
                    params, seed, (slot,)
                )[0],
            )
            for slot in range(params.q)
        ]
        commitment, decommit = params.qtmc.hard_commit(messages, rng.fork("node()"))
        dec.internal_nodes[()] = (commitment, decommit)

    return EdbCommitment(dec.internal_nodes[()][0]), dec
