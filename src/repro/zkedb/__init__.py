"""Zero-knowledge elementary database (ZK-EDB).

The paper's core cryptographic primitive (Section IV.A): commit to a
key-value database so that, for any key, the committer can produce exactly
one of a binding *ownership* proof (key present, recovering the value) or
*non-ownership* proof (key absent), while proofs reveal nothing else about
the database — not even its size.

Built as a q-ary tree with TMC leaf commitments and qTMC internal nodes,
per Section VI.B.  A sparse-Merkle baseline backend shares the same
interface for comparisons.
"""

from .backend import EdbBackend, ZkEdbBackend
from .commit import EdbCommitment, EdbDecommitment, commit_edb
from .edb import ElementaryDatabase
from .hash_backend import MerkleEdbBackend
from .params import TABLE2_GRID, EdbParams, choose_height
from .proofs import NonOwnershipProof, OwnershipProof, decode_proof
from .prove import prove_key, prove_non_ownership, prove_ownership
from .simulate import ZkEdbSimulator
from .verify import EdbVerifyOutcome, verify_proof

__all__ = [
    "ElementaryDatabase",
    "EdbParams",
    "choose_height",
    "TABLE2_GRID",
    "commit_edb",
    "EdbCommitment",
    "EdbDecommitment",
    "prove_key",
    "prove_ownership",
    "prove_non_ownership",
    "OwnershipProof",
    "NonOwnershipProof",
    "decode_proof",
    "verify_proof",
    "EdbVerifyOutcome",
    "ZkEdbSimulator",
    "EdbBackend",
    "ZkEdbBackend",
    "MerkleEdbBackend",
]
