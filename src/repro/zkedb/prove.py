"""EDB-proof: generate ownership / non-ownership proofs.

Ownership proofs hard-open the committed path.  Non-ownership proofs tease
the hard prefix of the path and then descend through deterministically
regenerated soft commitments (teased to the next node's hash) down to a
soft leaf teased to zero — the paper's bottom.
"""

from __future__ import annotations

from ..obs import default_registry
from .commit import (
    EdbDecommitment,
    derive_soft_internal,
    derive_soft_leaf,
    node_message,
)
from .params import EdbParams
from .proofs import NonOwnershipProof, OwnershipProof
from .tree import digits_for_key

__all__ = ["prove_key", "prove_ownership", "prove_non_ownership"]


def prove_key(
    params: EdbParams, dec: EdbDecommitment, key: int, engine=None
) -> OwnershipProof | NonOwnershipProof:
    """The paper's EDB-proof: dispatch on key membership.

    ``engine`` (optional) binds a :class:`~repro.engine.engine.ProofEngine`
    to the params before proving.
    """
    if engine is not None:
        params.bind_engine(engine)
    if dec.database.get(key) is not None:
        return prove_ownership(params, dec, key)
    return prove_non_ownership(params, dec, key)


def prove_ownership(params: EdbParams, dec: EdbDecommitment, key: int) -> OwnershipProof:
    """Hard-open every node on the key's path (Theta(q h) group work).

    Internal-slot openings are memoized on the decommitment: proofs over
    shared path prefixes (and proofs regenerated after an incremental
    recommit that left the node untouched) reuse the Theta(q) witness
    instead of recomputing it.
    """
    value = dec.database.get(key)
    if value is None:
        raise KeyError(f"key {key} is not committed; no ownership proof exists")
    digits = digits_for_key(key, params.q, params.height)
    memo = dec.opening_cache
    metrics = default_registry()

    openings = []
    children = []
    for depth in range(params.height):
        path = digits[:depth]
        slot = digits[depth]
        opening = memo.get((path, slot))
        if opening is None:
            metrics.counter("edb.opening_cache.misses").inc()
            _, node_decommit = dec.internal_nodes[path]
            opening = params.qtmc.hard_open(node_decommit, slot)
            memo[(path, slot)] = opening
        else:
            metrics.counter("edb.opening_cache.hits").inc()
        openings.append(opening)
        if depth + 1 < params.height:
            children.append(dec.internal_nodes[digits[: depth + 1]][0])

    leaf_commitment, leaf_decommit, _ = dec.leaves[digits]
    return OwnershipProof(
        key=key,
        internal_openings=tuple(openings),
        child_commitments=tuple(children),
        leaf_commitment=leaf_commitment,
        leaf_opening=params.tmc.hard_open(leaf_decommit),
        value=value,
    )


def prove_non_ownership(
    params: EdbParams, dec: EdbDecommitment, key: int
) -> NonOwnershipProof:
    """Tease the key's path down to an empty (soft, zero-teased) leaf."""
    if dec.database.get(key) is not None:
        raise KeyError(f"key {key} is committed; no non-ownership proof exists")
    digits = digits_for_key(key, params.q, params.height)

    teases = []
    children = []
    for depth in range(params.height):
        path = digits[:depth]
        child_path = digits[: depth + 1]
        hard = dec.internal_nodes.get(path)
        child_is_leaf = depth + 1 == params.height

        # Resolve the child commitment this node's slot points at.
        if child_is_leaf:
            leaf_state = dec.leaves.get(child_path)
            if leaf_state is not None:
                child_commitment = leaf_state[0]
            else:
                child_commitment, _ = derive_soft_leaf(params, dec.seed, child_path)
        else:
            child_hard = dec.internal_nodes.get(child_path)
            if child_hard is not None:
                child_commitment = child_hard[0]
            else:
                child_commitment, _ = derive_soft_internal(params, dec.seed, child_path)
        message = node_message(params, child_commitment)

        if hard is not None:
            _, node_decommit = dec.internal_nodes[path]
            tease = params.qtmc.tease_hard(node_decommit, digits[depth])
            if tease.message != message:
                raise AssertionError("frontier slot message mismatch (corrupt state)")
        else:
            _, soft_decommit = derive_soft_internal(params, dec.seed, path)
            tease = params.qtmc.tease_soft(soft_decommit, digits[depth], message)
        teases.append(tease)
        if not child_is_leaf:
            children.append(child_commitment)

    leaf_path = digits
    leaf_commitment, leaf_soft_decommit = derive_soft_leaf(params, dec.seed, leaf_path)
    leaf_tease = params.tmc.tease_soft(leaf_soft_decommit, 0)
    return NonOwnershipProof(
        key=key,
        internal_teases=tuple(teases),
        child_commitments=tuple(children),
        leaf_commitment=leaf_commitment,
        leaf_tease=leaf_tease,
    )
