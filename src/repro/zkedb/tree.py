"""q-ary tree addressing for the ZK-EDB.

A node is addressed by its digit path from the root: the empty tuple is
the root, ``(3,)`` its fourth child, and so on.  A key's leaf sits at the
full ``height``-digit path given by the key's base-q expansion, most
significant digit first — so distinct keys always have distinct leaves.
"""

from __future__ import annotations

from typing import Iterator

__all__ = [
    "NodePath",
    "digits_for_key",
    "key_for_digits",
    "frontier_paths",
]

NodePath = tuple[int, ...]


def digits_for_key(key: int, q: int, height: int) -> NodePath:
    """Base-q digits of ``key``, most significant first, length ``height``."""
    if key < 0 or key >= q**height:
        raise ValueError("key outside the tree's domain")
    digits = [0] * height
    for position in range(height - 1, -1, -1):
        key, digits[position] = divmod(key, q)
    return tuple(digits)


def key_for_digits(digits: NodePath, q: int) -> int:
    """Inverse of :func:`digits_for_key`."""
    key = 0
    for digit in digits:
        if not 0 <= digit < q:
            raise ValueError("digit outside [0, q)")
        key = key * q + digit
    return key


def frontier_paths(keys: list[NodePath]) -> Iterator[NodePath]:
    """All internal node paths on the root-to-leaf paths of the given keys.

    Yields each path once, deepest first, so callers can build commitments
    bottom-up.  Leaf paths (full length) are not included.
    """
    seen: set[NodePath] = set()
    for digits in keys:
        for depth in range(len(digits)):
            seen.add(digits[:depth])
    yield from sorted(seen, key=len, reverse=True)
