"""The elementary database (EDB) datatype.

An EDB is a set of (key, value) pairs with unique keys (Section IV.A of
the paper): keys are integers in the id domain, values are opaque byte
strings.  ``D(x)`` is None (the paper's bottom) for absent keys.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["ElementaryDatabase"]


class ElementaryDatabase:
    """A validated key -> value map over a bounded key domain."""

    __slots__ = ("key_bits", "_entries")

    def __init__(self, key_bits: int = 128, entries: dict[int, bytes] | None = None):
        self.key_bits = key_bits
        self._entries: dict[int, bytes] = {}
        if entries:
            for key, value in entries.items():
                self.put(key, value)

    def _check_key(self, key: int) -> int:
        if not isinstance(key, int):
            raise TypeError("EDB keys are integers")
        if key < 0 or key >= (1 << self.key_bits):
            raise ValueError(f"key outside the {self.key_bits}-bit domain")
        return key

    def put(self, key: int, value: bytes) -> None:
        """Insert or overwrite; values must be bytes."""
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("EDB values are byte strings")
        self._entries[self._check_key(key)] = bytes(value)

    def get(self, key: int) -> bytes | None:
        """The paper's D(x): the value, or None for bottom."""
        return self._entries.get(self._check_key(key))

    def support(self) -> list[int]:
        """The paper's [D]: sorted committed keys."""
        return sorted(self._entries)

    def __contains__(self, key: int) -> bool:
        return self._check_key(key) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[int, bytes]]:
        return iter(sorted(self._entries.items()))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ElementaryDatabase)
            and other.key_bits == self.key_bits
            and other._entries == self._entries
        )

    def copy(self) -> "ElementaryDatabase":
        return ElementaryDatabase(self.key_bits, dict(self._entries))

    def __repr__(self) -> str:
        return f"ElementaryDatabase({len(self._entries)} entries, {self.key_bits}-bit keys)"
