"""EDB-Verify: check proofs against a commitment.

Verification checks, per level, the (q)TMC opening equation and that the
opened message is the hash of the next commitment on the path.  All pairing
equations are batched: each is scaled by an independent random coefficient
and pairs sharing a G2 base are merged, so a whole h-level proof costs a
handful of Miller loops and one final exponentiation.  This is why
verification scales only with h while generation scales with q*h —
exactly the shape of the paper's Figure 5.

The scalar/structural checks and the pairing equations are separated by
:func:`gather_proof_checks`, so the engine layer can fold the equations of
*many* proofs into one batch (``ProofEngine.verify_many``) instead of
paying a final exponentiation per proof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..commitments.qmercurial import QtmcTease
from ..crypto.hashing import hash_bytes
from ..crypto.pairing import multi_pairing
from ..engine.batch import PairingBatch
from .commit import EdbCommitment, leaf_message, node_message
from .params import EdbParams
from .proofs import NonOwnershipProof, OwnershipProof
from .tree import digits_for_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.engine import ProofEngine

__all__ = ["EdbVerifyOutcome", "verify_proof", "gather_proof_checks"]


@dataclass(frozen=True)
class EdbVerifyOutcome:
    """The paper's EDB-Verify output: a value, bottom ('absent'), or bad."""

    status: str  # "value" | "absent" | "bad"
    value: bytes | None = None

    @property
    def is_bad(self) -> bool:
        return self.status == "bad"

    @property
    def is_value(self) -> bool:
        return self.status == "value"

    @property
    def is_absent(self) -> bool:
        return self.status == "absent"


_BAD = EdbVerifyOutcome("bad")


class _PairingBatch(PairingBatch):
    """Back-compat shim: the batcher now lives in :mod:`repro.engine.batch`."""

    def __init__(self, params: EdbParams, seed: bytes):
        super().__init__(params.curve, seed)
        self.params = params


def _resolve_engine(params: EdbParams, engine: "ProofEngine | None") -> "ProofEngine":
    if engine is not None:
        return engine
    if params.engine is not None:
        return params.engine
    from ..engine.engine import default_engine

    return default_engine()


def verify_proof(
    params: EdbParams,
    commitment: EdbCommitment,
    key: int,
    proof: OwnershipProof | NonOwnershipProof,
    batch: bool = True,
    engine: "ProofEngine | None" = None,
) -> EdbVerifyOutcome:
    """The paper's EDB-Verify(sigma, Com, x, pi) -> y / bottom / bad."""
    outcome, equations = gather_proof_checks(params, commitment, key, proof, engine)
    if outcome.is_bad or not equations:
        return outcome
    if batch:
        batcher = _PairingBatch(params, _batch_seed(params, commitment, proof))
        for pairs in equations:
            batcher.add_triples(pairs)
        if not batcher.check():
            return _BAD
    else:
        for pairs in equations:
            if not multi_pairing(params.curve, pairs).is_one():
                return _BAD
    return outcome


def gather_proof_checks(
    params: EdbParams,
    commitment: EdbCommitment,
    key: int,
    proof: OwnershipProof | NonOwnershipProof,
    engine: "ProofEngine | None" = None,
):
    """Run all scalar/structural checks; defer the pairing equations.

    Returns ``(provisional_outcome, equations)`` where ``equations`` is a
    list of pairing-pair lists (one per tree level, root first), each of
    which must multiply to one for the provisional outcome to stand.  A
    bad provisional outcome carries no equations.
    """
    if isinstance(proof, OwnershipProof):
        return _gather_ownership(params, commitment, key, proof, engine)
    if isinstance(proof, NonOwnershipProof):
        return _gather_non_ownership(params, commitment, key, proof, engine)
    return _BAD, []


def _batch_seed(params: EdbParams, commitment: EdbCommitment, proof) -> bytes:
    """Fiat-Shamir style seed for the batching coefficients."""
    return hash_bytes(
        b"repro/zkedb-batch",
        commitment.to_bytes(params) + proof.to_bytes(params),
    )


def _gather_ownership(
    params: EdbParams,
    commitment: EdbCommitment,
    key: int,
    proof: OwnershipProof,
    engine: "ProofEngine | None",
):
    if proof.key != key:
        return _BAD, []
    try:
        digits = digits_for_key(key, params.q, params.height)
    except ValueError:
        return _BAD, []
    if len(proof.internal_openings) != params.height:
        return _BAD, []
    if len(proof.child_commitments) != params.height - 1:
        return _BAD, []

    qtmc = params.qtmc
    ctx = _resolve_engine(params, engine)
    equations = []
    current = commitment.root
    for depth in range(params.height):
        opening = proof.internal_openings[depth]
        if opening.index != digits[depth]:
            return _BAD, []
        # Hardness: rho != 0 and C1 = g_1^rho.
        if opening.rho % params.curve.r == 0:
            return _BAD, []
        if ctx.fixed_mul(params.curve.g1, qtmc.g_powers[1], opening.rho) != current.c1:
            return _BAD, []
        child = (
            proof.child_commitments[depth]
            if depth + 1 < params.height
            else proof.leaf_commitment
        )
        if opening.message != node_message(params, child):
            return _BAD, []
        tease = QtmcTease(opening.index, opening.message, opening.witness)
        equations.append(qtmc.tease_pairing_pairs(current, tease))
        current = child

    if not params.tmc.verify_hard_open(proof.leaf_commitment, proof.leaf_opening):
        return _BAD, []
    expected = leaf_message(params, key, proof.value)
    if proof.leaf_opening.message != expected:
        return _BAD, []
    return EdbVerifyOutcome("value", proof.value), equations


def _gather_non_ownership(
    params: EdbParams,
    commitment: EdbCommitment,
    key: int,
    proof: NonOwnershipProof,
    engine: "ProofEngine | None",
):
    if proof.key != key:
        return _BAD, []
    try:
        digits = digits_for_key(key, params.q, params.height)
    except ValueError:
        return _BAD, []
    if len(proof.internal_teases) != params.height:
        return _BAD, []
    if len(proof.child_commitments) != params.height - 1:
        return _BAD, []

    qtmc = params.qtmc
    equations = []
    current = commitment.root
    for depth in range(params.height):
        tease = proof.internal_teases[depth]
        if tease.index != digits[depth]:
            return _BAD, []
        child = (
            proof.child_commitments[depth]
            if depth + 1 < params.height
            else proof.leaf_commitment
        )
        if tease.message != node_message(params, child):
            return _BAD, []
        equations.append(qtmc.tease_pairing_pairs(current, tease))
        current = child

    if proof.leaf_tease.message % params.curve.r != 0:
        return _BAD, []
    if not params.tmc.verify_tease(proof.leaf_commitment, proof.leaf_tease):
        return _BAD, []
    return EdbVerifyOutcome("absent"), equations
