"""EDB-Verify: check proofs against a commitment.

Verification checks, per level, the (q)TMC opening equation and that the
opened message is the hash of the next commitment on the path.  All pairing
equations are batched: each is scaled by an independent random coefficient
and pairs sharing a G2 base are merged, so a whole h-level proof costs a
handful of Miller loops and one final exponentiation.  This is why
verification scales only with h while generation scales with q*h —
exactly the shape of the paper's Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..commitments.qmercurial import QtmcTease
from ..crypto.hashing import hash_bytes
from ..crypto.pairing import multi_pairing
from ..crypto.rng import DeterministicRng
from .commit import EdbCommitment, leaf_message, node_message
from .params import EdbParams
from .proofs import NonOwnershipProof, OwnershipProof
from .tree import digits_for_key

__all__ = ["EdbVerifyOutcome", "verify_proof"]


@dataclass(frozen=True)
class EdbVerifyOutcome:
    """The paper's EDB-Verify output: a value, bottom ('absent'), or bad."""

    status: str  # "value" | "absent" | "bad"
    value: bytes | None = None

    @property
    def is_bad(self) -> bool:
        return self.status == "bad"

    @property
    def is_value(self) -> bool:
        return self.status == "value"

    @property
    def is_absent(self) -> bool:
        return self.status == "absent"


_BAD = EdbVerifyOutcome("bad")


class _PairingBatch:
    """Accumulates randomly weighted pairing triples, merged by G2 base."""

    def __init__(self, params: EdbParams, seed: bytes):
        self.params = params
        self.rng = DeterministicRng(seed)
        self.groups: dict = {}

    def add_triples(self, pairs) -> None:
        delta = self.params.curve.random_scalar(self.rng)
        for g1_point, g2_point in pairs:
            key = None if g2_point is None else (g2_point[0], g2_point[1])
            self.groups.setdefault(key, []).append((g1_point, delta))

    def check(self) -> bool:
        curve = self.params.curve
        merged = []
        for key, weighted in self.groups.items():
            if key is None:
                continue
            points = [point for point, _ in weighted]
            scalars = [delta for _, delta in weighted]
            combined = curve.g1.multi_mul(points, scalars)
            merged.append((combined, (key[0], key[1])))
        return multi_pairing(curve, merged).is_one()


def verify_proof(
    params: EdbParams,
    commitment: EdbCommitment,
    key: int,
    proof: OwnershipProof | NonOwnershipProof,
    batch: bool = True,
) -> EdbVerifyOutcome:
    """The paper's EDB-Verify(sigma, Com, x, pi) -> y / bottom / bad."""
    if isinstance(proof, OwnershipProof):
        return _verify_ownership(params, commitment, key, proof, batch)
    if isinstance(proof, NonOwnershipProof):
        return _verify_non_ownership(params, commitment, key, proof, batch)
    return _BAD


def _batch_seed(params: EdbParams, commitment: EdbCommitment, proof) -> bytes:
    """Fiat-Shamir style seed for the batching coefficients."""
    return hash_bytes(
        b"repro/zkedb-batch",
        commitment.to_bytes(params) + proof.to_bytes(params),
    )


def _verify_ownership(
    params: EdbParams,
    commitment: EdbCommitment,
    key: int,
    proof: OwnershipProof,
    batch: bool,
) -> EdbVerifyOutcome:
    if proof.key != key:
        return _BAD
    try:
        digits = digits_for_key(key, params.q, params.height)
    except ValueError:
        return _BAD
    if len(proof.internal_openings) != params.height:
        return _BAD
    if len(proof.child_commitments) != params.height - 1:
        return _BAD

    qtmc = params.qtmc
    batcher = _PairingBatch(params, _batch_seed(params, commitment, proof))
    current = commitment.root
    for depth in range(params.height):
        opening = proof.internal_openings[depth]
        if opening.index != digits[depth]:
            return _BAD
        # Hardness: rho != 0 and C1 = g_1^rho.
        if opening.rho % params.curve.r == 0:
            return _BAD
        if params.curve.g1.mul(qtmc.g_powers[1], opening.rho) != current.c1:
            return _BAD
        child = (
            proof.child_commitments[depth]
            if depth + 1 < params.height
            else proof.leaf_commitment
        )
        if opening.message != node_message(params, child):
            return _BAD
        tease = QtmcTease(opening.index, opening.message, opening.witness)
        pairs = qtmc.tease_pairing_pairs(current, tease)
        if batch:
            batcher.add_triples(pairs)
        elif not multi_pairing(params.curve, pairs).is_one():
            return _BAD
        current = child

    if batch and not batcher.check():
        return _BAD
    if not params.tmc.verify_hard_open(proof.leaf_commitment, proof.leaf_opening):
        return _BAD
    expected = leaf_message(params, key, proof.value)
    if proof.leaf_opening.message != expected:
        return _BAD
    return EdbVerifyOutcome("value", proof.value)


def _verify_non_ownership(
    params: EdbParams,
    commitment: EdbCommitment,
    key: int,
    proof: NonOwnershipProof,
    batch: bool,
) -> EdbVerifyOutcome:
    if proof.key != key:
        return _BAD
    try:
        digits = digits_for_key(key, params.q, params.height)
    except ValueError:
        return _BAD
    if len(proof.internal_teases) != params.height:
        return _BAD
    if len(proof.child_commitments) != params.height - 1:
        return _BAD

    qtmc = params.qtmc
    batcher = _PairingBatch(params, _batch_seed(params, commitment, proof))
    current = commitment.root
    for depth in range(params.height):
        tease = proof.internal_teases[depth]
        if tease.index != digits[depth]:
            return _BAD
        child = (
            proof.child_commitments[depth]
            if depth + 1 < params.height
            else proof.leaf_commitment
        )
        if tease.message != node_message(params, child):
            return _BAD
        pairs = qtmc.tease_pairing_pairs(current, tease)
        if batch:
            batcher.add_triples(pairs)
        elif not multi_pairing(params.curve, pairs).is_one():
            return _BAD
        current = child

    if batch and not batcher.check():
        return _BAD
    if proof.leaf_tease.message % params.curve.r != 0:
        return _BAD
    if not params.tmc.verify_tease(proof.leaf_commitment, proof.leaf_tease):
        return _BAD
    return EdbVerifyOutcome("absent")
