"""Sparse Merkle-tree EDB: the verifiable-but-not-private baseline.

A q-ary sparse Merkle tree over the same key domain as the ZK-EDB.  Absent
subtrees collapse to per-depth default hashes, so commitment is O(n h) and
proofs are the classic sibling chains.  It satisfies the *soundness* side
of the EDB contract (collision resistance gives binding for both ownership
and non-ownership) but leaks tree structure — sibling hashes reveal where
the committed keys cluster — which is exactly the property the paper pays
pairings to avoid.  Benchmarks compare the two; the protocol layer can run
on either.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..crypto.hashing import hash_parts
from ..crypto.rng import DeterministicRng
from .edb import ElementaryDatabase
from .params import choose_height
from .tree import NodePath, digits_for_key, frontier_paths
from .verify import EdbVerifyOutcome

__all__ = ["MerkleEdbBackend", "MerkleCommitment", "MerkleDecommitment", "MerkleProof"]

_BAD = EdbVerifyOutcome("bad")


@dataclass(frozen=True)
class MerkleCommitment:
    """The Merkle root."""

    root: bytes


@dataclass
class MerkleDecommitment:
    """Private prover state: the database and the hard node hashes."""

    database: ElementaryDatabase
    nodes: dict[NodePath, bytes]


@dataclass(frozen=True)
class MerkleProof:
    """Sibling chain for a key; ``value`` is None for non-ownership."""

    key: int
    siblings: tuple[tuple[bytes, ...], ...]  # per depth, q-1 sibling hashes
    value: bytes | None


class MerkleEdbBackend:
    """Sparse q-ary Merkle tree implementing the EDB backend protocol."""

    def __init__(self, q: int = 8, key_bits: int = 128, height: int | None = None):
        self.q = q
        self.key_bits = key_bits
        self.height = height if height is not None else choose_height(q, key_bits)
        if q**self.height < (1 << key_bits):
            raise ValueError("q**height must cover the key domain")
        self.name = f"merkle-edb(q={q},h={self.height})"

    # -- hashing ------------------------------------------------------------

    @staticmethod
    def _leaf_hash(key: int, value: bytes) -> bytes:
        return hash_parts(b"repro/merkle-leaf", key.to_bytes(16, "big"), value)

    @lru_cache(maxsize=None)
    def _default(self, depth: int) -> bytes:
        """Hash of a fully empty subtree rooted at ``depth``."""
        if depth == self.height:
            return hash_parts(b"repro/merkle-empty-leaf")
        child = self._default(depth + 1)
        return hash_parts(b"repro/merkle-node", *([child] * self.q))

    def _node_hash(self, children: list[bytes]) -> bytes:
        return hash_parts(b"repro/merkle-node", *children)

    # -- backend interface ----------------------------------------------------

    def commit(
        self, database: ElementaryDatabase, rng: DeterministicRng
    ) -> tuple[MerkleCommitment, MerkleDecommitment]:
        del rng  # deterministic structure; kept for interface parity
        if database.key_bits != self.key_bits:
            raise ValueError("database key domain does not match the backend")
        nodes: dict[NodePath, bytes] = {}
        digit_paths = []
        for key, value in database:
            path = digits_for_key(key, self.q, self.height)
            nodes[path] = self._leaf_hash(key, value)
            digit_paths.append(path)
        for path in frontier_paths(digit_paths):
            depth = len(path)
            children = [
                nodes.get(path + (slot,), self._default(depth + 1))
                for slot in range(self.q)
            ]
            nodes[path] = self._node_hash(children)
        root = nodes.get((), self._default(0))
        return MerkleCommitment(root), MerkleDecommitment(database.copy(), nodes)

    def prove(self, dec: MerkleDecommitment, key: int) -> MerkleProof:
        digits = digits_for_key(key, self.q, self.height)
        siblings = []
        for depth in range(self.height):
            row = []
            for slot in range(self.q):
                if slot == digits[depth]:
                    continue
                child_path = digits[:depth] + (slot,)
                row.append(dec.nodes.get(child_path, self._default(depth + 1)))
            siblings.append(tuple(row))
        return MerkleProof(key, tuple(siblings), dec.database.get(key))

    def verify(
        self, commitment: MerkleCommitment, key: int, proof: MerkleProof
    ) -> EdbVerifyOutcome:
        if proof.key != key:
            return _BAD
        try:
            digits = digits_for_key(key, self.q, self.height)
        except ValueError:
            return _BAD
        if len(proof.siblings) != self.height:
            return _BAD
        if any(len(row) != self.q - 1 for row in proof.siblings):
            return _BAD
        if proof.value is None:
            current = self._default(self.height)
        else:
            current = self._leaf_hash(key, proof.value)
        for depth in range(self.height - 1, -1, -1):
            row = list(proof.siblings[depth])
            children = row[: digits[depth]] + [current] + row[digits[depth] :]
            current = self._node_hash(children)
        if current != commitment.root:
            return _BAD
        if proof.value is None:
            return EdbVerifyOutcome("absent")
        return EdbVerifyOutcome("value", proof.value)

    def prove_many(self, dec: MerkleDecommitment, keys) -> list:
        """Hash proofs are cheap; a loop is the whole batching story."""
        return [self.prove(dec, key) for key in keys]

    def verify_many(self, items) -> list[EdbVerifyOutcome]:
        """No pairings to batch; verify each item in turn."""
        return [self.verify(commitment, key, proof) for commitment, key, proof in items]

    def commitment_bytes(self, commitment: MerkleCommitment) -> bytes:
        return commitment.root

    def decode_commitment_bytes(self, data: bytes) -> MerkleCommitment:
        if len(data) != 32:
            raise ValueError("Merkle commitment must be a 32-byte root")
        return MerkleCommitment(data)

    def proof_bytes(self, proof: MerkleProof) -> bytes:
        parts = [b"\x01" if proof.value is not None else b"\x00"]
        parts.append(proof.key.to_bytes(16, "big"))
        for row in proof.siblings:
            parts.extend(row)
        if proof.value is not None:
            parts.append(len(proof.value).to_bytes(4, "big") + proof.value)
        return b"".join(parts)

    def decode_proof_bytes(self, data: bytes) -> MerkleProof:
        has_value = data[0] == 1
        key = int.from_bytes(data[1:17], "big")
        offset = 17
        siblings = []
        for _ in range(self.height):
            row = []
            for _ in range(self.q - 1):
                row.append(data[offset : offset + 32])
                offset += 32
            siblings.append(tuple(row))
        value = None
        if has_value:
            length = int.from_bytes(data[offset : offset + 4], "big")
            value = data[offset + 4 : offset + 4 + length]
            offset += 4 + length
        if offset != len(data):
            raise ValueError("trailing bytes in Merkle proof")
        return MerkleProof(key, tuple(siblings), value)

    @property
    def zero_knowledge(self) -> bool:
        return False
