"""Backend protocol: one interface over both EDB implementations.

The DE-Sword protocol layer only needs commit / prove / verify plus byte
encodings, so it is written against this protocol.  Two complete
implementations exist:

* :class:`ZkEdbBackend` — the paper's scheme (pairing-based, verifiable
  *and* zero-knowledge);
* :class:`~repro.zkedb.hash_backend.MerkleEdbBackend` — a sparse Merkle
  tree (verifiable, *not* zero-knowledge), the natural non-private
  baseline, also used to run protocol-level tests at scale.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol, Sequence, runtime_checkable

from ..crypto.rng import DeterministicRng
from .commit import EdbCommitment, EdbDecommitment, commit_edb
from .edb import ElementaryDatabase
from .params import EdbParams
from .proofs import decode_proof
from .prove import prove_key
from .verify import EdbVerifyOutcome, verify_proof

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.engine import ProofEngine

__all__ = ["EdbBackend", "ZkEdbBackend"]


@runtime_checkable
class EdbBackend(Protocol):
    """What the protocol layer requires of an EDB implementation."""

    name: str

    def commit(
        self, database: ElementaryDatabase, rng: DeterministicRng
    ) -> tuple[Any, Any]: ...

    def prove(self, dec: Any, key: int) -> Any: ...

    def verify(self, commitment: Any, key: int, proof: Any) -> EdbVerifyOutcome: ...

    def prove_many(self, dec: Any, keys: Sequence[int]) -> list: ...

    def verify_many(self, items: Sequence[tuple]) -> list[EdbVerifyOutcome]: ...

    def commitment_bytes(self, commitment: Any) -> bytes: ...

    def decode_commitment_bytes(self, data: bytes) -> Any: ...

    def proof_bytes(self, proof: Any) -> bytes: ...

    def decode_proof_bytes(self, data: bytes) -> Any: ...

    @property
    def zero_knowledge(self) -> bool: ...


class ZkEdbBackend:
    """The paper's ZK-EDB behind the generic backend interface."""

    def __init__(
        self,
        params: EdbParams,
        engine: "ProofEngine | None" = None,
        warm: bool = True,
    ):
        self.params = params
        if engine is not None:
            params.bind_engine(engine)
        if warm:
            # Prime the process-wide cache (CRS small tables + the
            # hard-commit MsmBasis) so the first commitment pays no
            # table-construction cost.  Theta(q) group adds, once.
            params.qtmc.warm_tables()
            # Fork the engine's persistent pool now (no-op for serial
            # engines): workers spawned after the warm inherit the
            # tables via copy-on-write instead of re-deriving them.
            self.engine.warm_up()
        self.name = f"zk-edb(q={params.q},h={params.height})"

    @property
    def engine(self) -> "ProofEngine":
        if self.params.engine is not None:
            return self.params.engine
        from ..engine.engine import default_engine

        return default_engine()

    def commit(
        self, database: ElementaryDatabase, rng: DeterministicRng
    ) -> tuple[EdbCommitment, EdbDecommitment]:
        return commit_edb(self.params, database, rng)

    def commit_incremental(
        self,
        database: ElementaryDatabase,
        rng: DeterministicRng,
        prior: EdbDecommitment,
        changed_keys=None,
    ) -> tuple[EdbCommitment, EdbDecommitment]:
        """Recommit only the keys that differ from ``prior``'s database.

        O(changed · h) group work; see :func:`repro.zkedb.commit.commit_edb`
        for semantics and the seed-reuse caveat.  Optional in the backend
        protocol — callers discover it with ``getattr``.
        """
        return commit_edb(
            self.params, database, rng, prior=prior, changed_keys=changed_keys
        )

    def prove(self, dec: EdbDecommitment, key: int):
        return prove_key(self.params, dec, key)

    def verify(self, commitment: EdbCommitment, key: int, proof) -> EdbVerifyOutcome:
        return verify_proof(self.params, commitment, key, proof)

    def prove_many(self, dec: EdbDecommitment, keys: Sequence[int]) -> list:
        """Prove many keys, fanned out over the engine's executor."""
        return self.engine.prove_many(self.params, dec, keys)

    def verify_many(self, items: Sequence[tuple]) -> list[EdbVerifyOutcome]:
        """Verify (commitment, key, proof) items as few pairing batches."""
        return self.engine.verify_many(self.params, items)

    def commitment_bytes(self, commitment: EdbCommitment) -> bytes:
        return commitment.to_bytes(self.params)

    def decode_commitment_bytes(self, data: bytes) -> EdbCommitment:
        from ..commitments.qmercurial import QtmcCommitment
        from ..crypto.serialize import ByteReader

        reader = ByteReader(data)
        root = QtmcCommitment(
            reader.take_g1(self.params.curve), reader.take_g1(self.params.curve)
        )
        reader.expect_end()
        return EdbCommitment(root)

    def proof_bytes(self, proof) -> bytes:
        return proof.to_bytes(self.params)

    def decode_proof_bytes(self, data: bytes):
        return decode_proof(self.params, data)

    @property
    def zero_knowledge(self) -> bool:
        return True
