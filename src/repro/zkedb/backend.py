"""Backend protocol: one interface over both EDB implementations.

The DE-Sword protocol layer only needs commit / prove / verify plus byte
encodings, so it is written against this protocol.  Two complete
implementations exist:

* :class:`ZkEdbBackend` — the paper's scheme (pairing-based, verifiable
  *and* zero-knowledge);
* :class:`~repro.zkedb.hash_backend.MerkleEdbBackend` — a sparse Merkle
  tree (verifiable, *not* zero-knowledge), the natural non-private
  baseline, also used to run protocol-level tests at scale.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from ..crypto.rng import DeterministicRng
from .commit import EdbCommitment, EdbDecommitment, commit_edb
from .edb import ElementaryDatabase
from .params import EdbParams
from .proofs import decode_proof
from .prove import prove_key
from .verify import EdbVerifyOutcome, verify_proof

__all__ = ["EdbBackend", "ZkEdbBackend"]


@runtime_checkable
class EdbBackend(Protocol):
    """What the protocol layer requires of an EDB implementation."""

    name: str

    def commit(
        self, database: ElementaryDatabase, rng: DeterministicRng
    ) -> tuple[Any, Any]: ...

    def prove(self, dec: Any, key: int) -> Any: ...

    def verify(self, commitment: Any, key: int, proof: Any) -> EdbVerifyOutcome: ...

    def commitment_bytes(self, commitment: Any) -> bytes: ...

    def decode_commitment_bytes(self, data: bytes) -> Any: ...

    def proof_bytes(self, proof: Any) -> bytes: ...

    def decode_proof_bytes(self, data: bytes) -> Any: ...

    @property
    def zero_knowledge(self) -> bool: ...


class ZkEdbBackend:
    """The paper's ZK-EDB behind the generic backend interface."""

    def __init__(self, params: EdbParams):
        self.params = params
        self.name = f"zk-edb(q={params.q},h={params.height})"

    def commit(
        self, database: ElementaryDatabase, rng: DeterministicRng
    ) -> tuple[EdbCommitment, EdbDecommitment]:
        return commit_edb(self.params, database, rng)

    def prove(self, dec: EdbDecommitment, key: int):
        return prove_key(self.params, dec, key)

    def verify(self, commitment: EdbCommitment, key: int, proof) -> EdbVerifyOutcome:
        return verify_proof(self.params, commitment, key, proof)

    def commitment_bytes(self, commitment: EdbCommitment) -> bytes:
        return commitment.to_bytes(self.params)

    def decode_commitment_bytes(self, data: bytes) -> EdbCommitment:
        from ..commitments.qmercurial import QtmcCommitment
        from ..crypto.serialize import ByteReader

        reader = ByteReader(data)
        root = QtmcCommitment(
            reader.take_g1(self.params.curve), reader.take_g1(self.params.curve)
        )
        reader.expect_end()
        return EdbCommitment(root)

    def proof_bytes(self, proof) -> bytes:
        return proof.to_bytes(self.params)

    def decode_proof_bytes(self, data: bytes):
        return decode_proof(self.params, data)

    @property
    def zero_knowledge(self) -> bool:
        return True
