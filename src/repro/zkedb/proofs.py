"""Ownership / non-ownership proof objects and their wire encodings.

An ownership proof hard-opens every commitment on the root-to-leaf path of
the queried key; a non-ownership proof soft-opens (teases) the same path
down to an empty leaf.  Proof sizes are measured on the serialized bytes
produced here — this is what regenerates the paper's Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..commitments.mercurial import TmcCommitment, TmcHardOpening, TmcTease
from ..commitments.qmercurial import QtmcCommitment, QtmcHardOpening, QtmcTease
from ..crypto.serialize import ByteReader, encode_bytes
from .params import EdbParams
from .tree import digits_for_key

__all__ = ["OwnershipProof", "NonOwnershipProof", "decode_proof"]

_OWNERSHIP_TAG = 1
_NON_OWNERSHIP_TAG = 2


@dataclass(frozen=True)
class OwnershipProof:
    """Proof that ``key`` is committed with value ``value``.

    ``internal_openings[d]`` hard-opens the depth-d node at the key's digit;
    ``child_commitments[d]`` is the depth-(d+1) node commitment (the last
    child on the path is the leaf, carried separately).
    """

    key: int
    internal_openings: tuple[QtmcHardOpening, ...]
    child_commitments: tuple[QtmcCommitment, ...]
    leaf_commitment: TmcCommitment
    leaf_opening: TmcHardOpening
    value: bytes

    def to_bytes(self, params: EdbParams) -> bytes:
        curve = params.curve
        out = [bytes([_OWNERSHIP_TAG]), self.key.to_bytes(params.key_bits // 8, "big")]
        for opening in self.internal_openings:
            out.append(opening.to_bytes(curve))
        for commitment in self.child_commitments:
            out.append(commitment.to_bytes(curve))
        out.append(self.leaf_commitment.to_bytes(curve))
        out.append(self.leaf_opening.to_bytes(curve))
        out.append(encode_bytes(self.value))
        return b"".join(out)

    def size_bytes(self, params: EdbParams) -> int:
        return len(self.to_bytes(params))


@dataclass(frozen=True)
class NonOwnershipProof:
    """Proof that ``key`` is not committed (the paper's bottom)."""

    key: int
    internal_teases: tuple[QtmcTease, ...]
    child_commitments: tuple[QtmcCommitment, ...]
    leaf_commitment: TmcCommitment
    leaf_tease: TmcTease

    def to_bytes(self, params: EdbParams) -> bytes:
        curve = params.curve
        out = [bytes([_NON_OWNERSHIP_TAG]), self.key.to_bytes(params.key_bits // 8, "big")]
        for tease in self.internal_teases:
            out.append(tease.to_bytes(curve))
        for commitment in self.child_commitments:
            out.append(commitment.to_bytes(curve))
        out.append(self.leaf_commitment.to_bytes(curve))
        out.append(self.leaf_tease.to_bytes(curve))
        return b"".join(out)

    def size_bytes(self, params: EdbParams) -> int:
        return len(self.to_bytes(params))


def decode_proof(params: EdbParams, data: bytes) -> OwnershipProof | NonOwnershipProof:
    """Parse a proof from wire bytes, validating every group element."""
    reader = ByteReader(data)
    tag = reader.take(1)[0]
    key = int.from_bytes(reader.take(params.key_bits // 8), "big")
    digits = digits_for_key(key, params.q, params.height)
    curve = params.curve
    height = params.height
    if tag == _OWNERSHIP_TAG:
        openings = []
        for depth in range(height):
            message = reader.take_scalar(curve)
            witness = reader.take_g1(curve)
            rho = reader.take_scalar(curve)
            openings.append(QtmcHardOpening(digits[depth], message, witness, rho))
        children = tuple(
            QtmcCommitment(reader.take_g1(curve), reader.take_g1(curve))
            for _ in range(height - 1)
        )
        leaf_commitment = TmcCommitment(reader.take_g1(curve), reader.take_g1(curve))
        leaf_opening = TmcHardOpening(
            reader.take_scalar(curve), reader.take_scalar(curve), reader.take_scalar(curve)
        )
        value = reader.take_bytes()
        reader.expect_end()
        return OwnershipProof(
            key, tuple(openings), children, leaf_commitment, leaf_opening, value
        )
    if tag == _NON_OWNERSHIP_TAG:
        teases = []
        for depth in range(height):
            message = reader.take_scalar(curve)
            witness = reader.take_g1(curve)
            teases.append(QtmcTease(digits[depth], message, witness))
        children = tuple(
            QtmcCommitment(reader.take_g1(curve), reader.take_g1(curve))
            for _ in range(height - 1)
        )
        leaf_commitment = TmcCommitment(reader.take_g1(curve), reader.take_g1(curve))
        leaf_tease = TmcTease(reader.take_scalar(curve), reader.take_scalar(curve))
        reader.expect_end()
        return NonOwnershipProof(key, tuple(teases), children, leaf_commitment, leaf_tease)
    raise ValueError(f"unknown proof tag {tag}")
