"""Parameter selection for the ZK-EDB tree.

The database keys live in a domain of ``key_bits`` bits and are mapped to
the leaves of a q-ary tree of height h with ``q**h >= 2**key_bits``
(Section VI.B of the paper).  ``TABLE2_GRID`` is the exact (q, h) grid the
paper evaluates in Table II for a 128-bit id space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..commitments.mercurial import TmcParams
from ..commitments.qmercurial import QtmcParams
from ..crypto.bn import BNCurve
from ..crypto.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.engine import ProofEngine

__all__ = ["EdbParams", "choose_height", "TABLE2_GRID"]

# The paper's Table II parameterisation: q^h >= 2^128.
TABLE2_GRID: tuple[tuple[int, int], ...] = (
    (8, 43),
    (16, 32),
    (32, 26),
    (64, 22),
    (128, 19),
)


def choose_height(q: int, key_bits: int) -> int:
    """Smallest h with q**h >= 2**key_bits."""
    if q < 2:
        raise ValueError("q must be at least 2")
    height = 0
    capacity = 1
    bound = 1 << key_bits
    while capacity < bound:
        capacity *= q
        height += 1
    return height


@dataclass(frozen=True)
class EdbParams:
    """Everything a ZK-EDB instance needs: tree shape plus both CRSs."""

    curve: BNCurve
    q: int
    height: int
    key_bits: int
    qtmc: QtmcParams
    tmc: TmcParams
    engine: "ProofEngine | None" = field(default=None, compare=False, repr=False)

    @classmethod
    def generate(
        cls,
        curve: BNCurve,
        rng: DeterministicRng,
        q: int = 8,
        key_bits: int = 128,
        height: int | None = None,
        with_trapdoor: bool = False,
        engine: "ProofEngine | None" = None,
    ) -> "EdbParams":
        """Trusted setup for the whole EDB (run by the proxy in DE-Sword)."""
        if height is None:
            height = choose_height(q, key_bits)
        if q**height < (1 << key_bits):
            raise ValueError("q**height must cover the key domain")
        qtmc = QtmcParams.generate(curve, q, rng.fork("qtmc"), with_trapdoor, engine=engine)
        tmc = TmcParams.generate(curve, rng.fork("tmc"), with_trapdoor, engine=engine)
        return cls(curve, q, height, key_bits, qtmc, tmc, engine=engine)

    def bind_engine(self, engine: "ProofEngine") -> "EdbParams":
        """Attach an engine to these params and both underlying CRSs."""
        object.__setattr__(self, "engine", engine)
        self.qtmc.engine = engine
        self.tmc.engine = engine
        return self

    @property
    def trapdoor_available(self) -> bool:
        return self.qtmc.trapdoor is not None
