"""The zero-knowledge simulator for the EDB.

With the CRS trapdoor, a simulator can commit to *nothing* and later answer
any query consistently with an oracle for D(x) — producing proofs that are
indistinguishable from real ones.  This is the formal content of the
paper's privacy guarantee (Definition 2, "ZK-EDB zero-knowledge"): since a
simulator without the database can produce the same transcripts, real
transcripts cannot leak anything beyond the queried values.

The tests use this class both to demonstrate the trapdoor is real and to
check transcript-shape indistinguishability.
"""

from __future__ import annotations

from ..crypto.rng import DeterministicRng
from .commit import EdbCommitment, leaf_message, node_message
from .params import EdbParams
from .proofs import NonOwnershipProof, OwnershipProof
from .tree import NodePath, digits_for_key

__all__ = ["ZkEdbSimulator"]


class ZkEdbSimulator:
    """Answers EDB queries with equivocated proofs, without a database."""

    def __init__(self, params: EdbParams, rng: DeterministicRng):
        if not params.trapdoor_available:
            raise ValueError("the simulator needs trapdoor parameters")
        self.params = params
        self.rng = rng
        # Every node, including the root, is a fake (equivocable) commitment.
        self._internal: dict[NodePath, tuple] = {}
        self._leaves: dict[NodePath, tuple] = {}
        self.commitment = EdbCommitment(self._internal_node(())[0])

    def _internal_node(self, path: NodePath) -> tuple:
        if path not in self._internal:
            self._internal[path] = self.params.qtmc.fake_commit(
                self.rng.fork(f"sim-node{path}")
            )
        return self._internal[path]

    def _leaf_node(self, path: NodePath) -> tuple:
        if path not in self._leaves:
            self._leaves[path] = self.params.tmc.fake_commit(
                self.rng.fork(f"sim-leaf{path}")
            )
        return self._leaves[path]

    def simulate_ownership(self, key: int, value: bytes) -> OwnershipProof:
        """A fake ownership proof for (key, value) from the oracle."""
        params = self.params
        digits = digits_for_key(key, params.q, params.height)
        openings = []
        children = []
        for depth in range(params.height):
            _, decommit = self._internal_node(digits[:depth])
            if depth + 1 < params.height:
                child_commitment, _ = self._internal_node(digits[: depth + 1])
                children.append(child_commitment)
            else:
                child_commitment, _ = self._leaf_node(digits)
            message = node_message(params, child_commitment)
            openings.append(
                params.qtmc.equivocate_hard(decommit, digits[depth], message)
            )
        leaf_commitment, leaf_decommit = self._leaf_node(digits)
        leaf_opening = params.tmc.equivocate_hard(
            leaf_decommit, leaf_message(params, key, value)
        )
        return OwnershipProof(
            key=key,
            internal_openings=tuple(openings),
            child_commitments=tuple(children),
            leaf_commitment=leaf_commitment,
            leaf_opening=leaf_opening,
            value=value,
        )

    def simulate_non_ownership(self, key: int) -> NonOwnershipProof:
        """A fake non-ownership proof for an absent key."""
        params = self.params
        digits = digits_for_key(key, params.q, params.height)
        teases = []
        children = []
        for depth in range(params.height):
            _, decommit = self._internal_node(digits[:depth])
            if depth + 1 < params.height:
                child_commitment, _ = self._internal_node(digits[: depth + 1])
                children.append(child_commitment)
            else:
                child_commitment, _ = self._leaf_node(digits)
            message = node_message(params, child_commitment)
            teases.append(
                params.qtmc.equivocate_tease(decommit, digits[depth], message)
            )
        leaf_commitment, leaf_decommit = self._leaf_node(digits)
        leaf_tease = params.tmc.equivocate_tease(leaf_decommit, 0)
        return NonOwnershipProof(
            key=key,
            internal_teases=tuple(teases),
            child_commitments=tuple(children),
            leaf_commitment=leaf_commitment,
            leaf_tease=leaf_tease,
        )
