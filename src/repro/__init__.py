"""DE-Sword reproduction: incentivized verifiable product path query for
RFID-enabled supply chains (Qi et al., ICDCS 2017).

Public API layers:

* :mod:`repro.crypto` — from-scratch BN-curve pairing substrate;
* :mod:`repro.engine` — the ProofEngine execution layer: shared
  precomputation caches, batched prove/verify, pluggable parallelism;
* :mod:`repro.commitments` — mercurial (TMC) and q-mercurial (qTMC)
  commitments;
* :mod:`repro.zkedb` — the zero-knowledge elementary database plus a
  Merkle baseline backend;
* :mod:`repro.poc` — the POC scheme (Table I) and the signature-list
  strawman baseline;
* :mod:`repro.supplychain` — the RFID supply-chain world model;
* :mod:`repro.desword` — the protocol: phases, proxy, reputation,
  adversaries, applications, incentive analysis;
* :mod:`repro.obs` — telemetry: metrics registry, span tracing,
  structured logging;
* :mod:`repro.analysis` — experiment harness helpers.

Quickstart::

    from repro import DeSwordConfig, Deployment, pharma_chain, DeterministicRng
    from repro.supplychain import product_batch

    rng = DeterministicRng("quickstart")
    config = DeSwordConfig(backend_kind="zk", curve_kind="toy", q=4, key_bits=32)
    deployment = Deployment.build(pharma_chain(rng), config.build_scheme())
    products = product_batch(rng, 8, key_bits=32)
    deployment.distribute(products)
    print(deployment.query(products[0]).path)
"""

from .crypto import BNCurve, DeterministicRng, bn254, toy_bn
from .engine import (
    ParallelExecutor,
    ProofEngine,
    SerialExecutor,
    default_engine,
)
from .desword import (
    Behavior,
    DeSwordConfig,
    Deployment,
    QueryProxy,
    QueryResult,
    ReputationPolicy,
)
from .obs import MetricsRegistry, default_registry, get_logger, trace
from .poc import BaselinePocScheme, PocScheme
from .supplychain import pharma_chain, random_dag_chain
from .zkedb import EdbParams, ElementaryDatabase, MerkleEdbBackend, ZkEdbBackend

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BNCurve",
    "bn254",
    "toy_bn",
    "DeterministicRng",
    "ProofEngine",
    "SerialExecutor",
    "ParallelExecutor",
    "default_engine",
    "EdbParams",
    "ElementaryDatabase",
    "ZkEdbBackend",
    "MerkleEdbBackend",
    "PocScheme",
    "BaselinePocScheme",
    "DeSwordConfig",
    "Deployment",
    "QueryProxy",
    "QueryResult",
    "ReputationPolicy",
    "Behavior",
    "MetricsRegistry",
    "default_registry",
    "get_logger",
    "trace",
    "pharma_chain",
    "random_dag_chain",
]
