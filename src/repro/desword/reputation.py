"""The double-edged reputation engine (Section II.C, Figure 2).

The proxy maintains publicly readable reputation scores.  After a *good*
product query every identified participant earns a positive score; after a
*bad* product query every identified participant receives a negative score.
Detected protocol violations carry their own penalty.  Scores can be
responsibility-weighted along the path ("diverse positive/negative
reputation scores based on the responsibilities of the identified
participants").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..obs import default_registry, get_logger

__all__ = [
    "ReputationPolicy",
    "ScoreEvent",
    "ReputationEngine",
    "apply_query_awards",
]

_log = get_logger(__name__)


def _uniform_weight(position: int, path_length: int) -> float:
    """Default responsibility weight: everyone on the path is equal."""
    del position, path_length
    return 1.0


def upstream_weight(position: int, path_length: int) -> float:
    """A weighting that holds upstream (earlier) participants more liable."""
    if path_length <= 1:
        return 1.0
    return 1.0 + (path_length - 1 - position) / (path_length - 1)


@dataclass(frozen=True)
class ReputationPolicy:
    """Score magnitudes and weighting for the double-edged award."""

    positive_score: float = 1.0
    negative_score: float = -1.0
    violation_penalty: float = -3.0
    responsibility_weight: Callable[[int, int], float] = _uniform_weight

    def __post_init__(self):
        if self.positive_score <= 0:
            raise ValueError("positive_score must be positive")
        if self.negative_score >= 0:
            raise ValueError("negative_score must be negative")
        if self.violation_penalty >= 0:
            raise ValueError("violation_penalty must be negative")


@dataclass(frozen=True)
class ScoreEvent:
    """One reputation update, kept for auditability."""

    participant_id: str
    delta: float
    reason: str
    product_id: int | None = None


class ReputationEngine:
    """Publicly readable scores plus an append-only audit log.

    ``sink`` — when set — observes every new :class:`ScoreEvent` as it is
    awarded; the proxy's durable store attaches here so awards are
    journaled the moment they happen.  :meth:`replay` re-applies a
    previously journaled event *without* notifying the sink, which is how
    crash recovery rebuilds the ledger without re-journaling it.
    """

    def __init__(
        self,
        policy: ReputationPolicy | None = None,
        sink: Callable[[ScoreEvent], None] | None = None,
    ):
        self.policy = policy or ReputationPolicy()
        self.sink = sink
        self._scores: dict[str, float] = {}
        self.history: list[ScoreEvent] = []

    def award(
        self,
        participant_id: str,
        delta: float,
        reason: str,
        product_id: int | None = None,
    ) -> None:
        event = ScoreEvent(participant_id, delta, reason, product_id)
        self._scores[participant_id] = self._scores.get(participant_id, 0.0) + delta
        self.history.append(event)
        if self.sink is not None:
            self.sink(event)
        sign = "positive" if delta >= 0 else "negative"
        metrics = default_registry()
        metrics.counter("reputation.awards", sign=sign).inc()
        metrics.counter("reputation.award_points", sign=sign).inc(abs(delta))
        _log.debug(
            "award %+.3f to %s (%s, product=%s)", delta, participant_id, reason, product_id
        )

    def replay(self, event: ScoreEvent) -> None:
        """Re-apply a journaled award (no sink notification, no metrics)."""
        self._scores[event.participant_id] = (
            self._scores.get(event.participant_id, 0.0) + event.delta
        )
        self.history.append(event)

    def apply_good_query(self, path: Sequence[str], product_id: int) -> None:
        """Positive edge: reward everyone identified on a good product."""
        for position, participant_id in enumerate(path):
            weight = self.policy.responsibility_weight(position, len(path))
            self.award(
                participant_id,
                self.policy.positive_score * weight,
                "good-product-query",
                product_id,
            )

    def apply_bad_query(self, path: Sequence[str], product_id: int) -> None:
        """Negative edge: penalise everyone identified on a bad product."""
        for position, participant_id in enumerate(path):
            weight = self.policy.responsibility_weight(position, len(path))
            self.award(
                participant_id,
                self.policy.negative_score * weight,
                "bad-product-query",
                product_id,
            )

    def apply_violation(
        self, participant_id: str, kind: str, product_id: int | None = None
    ) -> None:
        self.award(
            participant_id,
            self.policy.violation_penalty,
            f"violation:{kind}",
            product_id,
        )

    def merge_history(self, events: Sequence[ScoreEvent]) -> None:
        """Fold another ledger's journal into this one (journal order)."""
        for event in events:
            self.replay(event)

    def score_of(self, participant_id: str) -> float:
        """Public read access (customers consult these scores)."""
        return self._scores.get(participant_id, 0.0)

    def leaderboard(self) -> list[tuple[str, float]]:
        return sorted(self._scores.items(), key=lambda item: (-item[1], item[0]))

    def snapshot(self) -> dict[str, float]:
        return dict(self._scores)


def apply_query_awards(engine: ReputationEngine, result) -> None:
    """The double-edged award for one finished query (Figure 2).

    This is the *single merge point* for query-driven reputation: the
    monolithic proxy and the sharded router both route every finished
    :class:`~repro.desword.proxy.QueryResult` through here, against
    exactly one engine.  A participant identified on paths owned by
    different shards therefore accrues onto one consolidated ledger —
    per-shard ledgers would silently split its score.

    Refuses to apply twice: a result that already carried its awards
    (``reputation_applied``) must never be scored again by a different
    layer of the tier.
    """
    if result.reputation_applied:
        raise ValueError(
            f"query {result.product_id:#x} already carried its reputation awards"
        )
    if result.quality == "good":
        engine.apply_good_query(result.path, result.product_id)
    else:
        engine.apply_bad_query(result.path, result.product_id)
    for violation in result.violations:
        if violation.attributable:
            engine.apply_violation(
                violation.participant_id, violation.kind, violation.product_id
            )
    result.reputation_applied = True
