"""Protocol messages.

Every unit of communication in the two phases is a message object with a
measurable wire size, so the experiments report real byte counts: the
public-parameter broadcast and POC-list assembly of the distribution
phase, and the query interactions of the query phase (Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Message",
    "PsRequest",
    "PsBroadcast",
    "PocTransfer",
    "PocListSubmission",
    "QueryRequest",
    "ProofResponse",
    "RevealRequest",
    "NextParticipantRequest",
    "NextParticipantResponse",
    "PathQuery",
    "PathQueryResult",
    "CatalogRequest",
    "CatalogResponse",
    "GOOD_QUERY",
    "BAD_QUERY",
    "INTERACTIVE_MODE",
    "SWEEP_MODE",
]

INTERACTIVE_MODE = "interactive"
SWEEP_MODE = "sweep"

GOOD_QUERY = "good"
BAD_QUERY = "bad"

_HEADER_BYTES = 16  # message type + routing header, flat accounting


@dataclass(frozen=True)
class Message:
    """Base message; subclasses define payload size.

    ``msg_id`` is an optional idempotency id stamped by the retry layer on
    unreliable networks: endpoints cache their response per id, so a
    duplicated or retried delivery is answered once.  It is keyword-only
    (so subclass field order is unaffected), excluded from equality, and
    costs wire bytes only when set — plain reliable runs never stamp it,
    keeping their byte accounting unchanged.

    ``trace_ctx`` is the optional :class:`~repro.obs.TraceContext` riding
    the envelope so the receiving endpoint's spans join the sender's
    causal tree.  Like real tracing headers it is treated as part of the
    flat 16-byte routing header for accounting purposes: it never adds
    wire bytes, never participates in equality, and disappears entirely
    when tracing is off — byte-level experiments are unaffected.
    """

    msg_id: str | None = field(default=None, compare=False, kw_only=True)
    trace_ctx: Any = field(default=None, compare=False, repr=False, kw_only=True)

    def payload_bytes(self) -> int:
        return 0

    def size_bytes(self) -> int:
        overhead = len(self.msg_id.encode()) if self.msg_id else 0
        return _HEADER_BYTES + overhead + self.payload_bytes()

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class PsRequest(Message):
    """The initial participant asks the proxy for the public parameter
    handle (Section IV.B: 'the initial participant v1 requests ps from
    the proxy')."""

    task_id: str

    def payload_bytes(self) -> int:
        return len(self.task_id.encode())


@dataclass(frozen=True)
class PsBroadcast(Message):
    """The initial participant relays the public parameter handle."""

    ps_id: str

    def payload_bytes(self) -> int:
        return len(self.ps_id.encode())


@dataclass(frozen=True)
class PocTransfer(Message):
    """A child sends its POC (and collected pairs) toward the initial."""

    sender: str
    poc_bytes: bytes
    pair_count: int = 0

    def payload_bytes(self) -> int:
        return len(self.sender.encode()) + len(self.poc_bytes) + 4


@dataclass(frozen=True)
class PocListSubmission(Message):
    """The initial participant submits the assembled POC list to the proxy."""

    task_id: str
    poc_list_bytes: int

    def payload_bytes(self) -> int:
        return len(self.task_id.encode()) + self.poc_list_bytes


@dataclass(frozen=True)
class QueryRequest(Message):
    """(query request, id, POC_v) from the proxy (Section IV.C step 1)."""

    query_kind: str  # GOOD_QUERY or BAD_QUERY
    product_id: int
    poc_bytes: bytes

    def payload_bytes(self) -> int:
        return 1 + 16 + len(self.poc_bytes)


@dataclass(frozen=True)
class ProofResponse(Message):
    """A participant's proof (or refusal: proof_bytes is None)."""

    participant_id: str
    proof_bytes: bytes | None
    proof: Any = field(default=None, compare=False)  # decoded object, local

    def payload_bytes(self) -> int:
        return len(self.participant_id.encode()) + (
            len(self.proof_bytes) if self.proof_bytes is not None else 1
        )

    @property
    def refused(self) -> bool:
        return self.proof_bytes is None


@dataclass(frozen=True)
class RevealRequest(Message):
    """Bad-product case step 2: demand the ownership proof."""

    product_id: int

    def payload_bytes(self) -> int:
        return 16


@dataclass(frozen=True)
class NextParticipantRequest(Message):
    """Ask the identified participant who processed the product next."""

    product_id: int

    def payload_bytes(self) -> int:
        return 16


@dataclass(frozen=True)
class NextParticipantResponse(Message):
    """The claimed next participant (None at the end of the path)."""

    next_participant: str | None

    def payload_bytes(self) -> int:
        return len(self.next_participant.encode()) if self.next_participant else 1


@dataclass(frozen=True)
class PathQuery(Message):
    """Front-door request: run one product path query end to end.

    This is the message a *user* (or the load generator) sends to the
    proxy tier's public API endpoint; the proxy then drives the paper's
    interactive or sweep protocol internally and answers with a
    :class:`PathQueryResult`.  ``quality`` overrides the oracle verdict
    when set (tests); ``None`` lets the tier consult its own oracle.
    """

    product_id: int
    mode: str = INTERACTIVE_MODE  # INTERACTIVE_MODE or SWEEP_MODE
    quality: str | None = None

    def payload_bytes(self) -> int:
        quality = len(self.quality.encode()) if self.quality else 1
        return 16 + len(self.mode.encode()) + quality


@dataclass(frozen=True)
class PathQueryResult(Message):
    """The front door's answer: the query outcome's canonical encoding.

    ``result_bytes`` is :meth:`~repro.desword.proxy.QueryResult.canonical_bytes`
    verbatim — the transport-independent identity the sharded tier's
    equivalence tests compare, so a socket client can byte-compare
    answers against any other deployment of the same world.
    """

    product_id: int
    result_bytes: bytes

    def payload_bytes(self) -> int:
        return 16 + len(self.result_bytes)


@dataclass(frozen=True)
class CatalogRequest(Message):
    """Ask the front door which product ids it can answer queries for."""

    def payload_bytes(self) -> int:
        return 1


@dataclass(frozen=True)
class CatalogResponse(Message):
    """The distributed product ids (what a load generator samples from)."""

    product_ids: tuple[int, ...]

    def payload_bytes(self) -> int:
        return 4 + 16 * len(self.product_ids)
