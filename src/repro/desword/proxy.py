"""The trustworthy query proxy (Sections II.C, IV.C, IV.D).

The proxy stores submitted POC lists (a POC-queue per initial
participant), issues good/bad product path information queries, verifies
every response against the POC list, attributes violations, and applies
the double-edged reputation award.

Two query modes are provided:

* :meth:`QueryProxy.query_product` — the paper's interactive traversal:
  identify the initial participant through its POC queue, then follow
  next-participant pointers, verifying each hop and falling back to a
  child scan of the POC list when a hop misbehaves;
* :meth:`QueryProxy.sweep_query` — ask *every* participant of the POC
  list for a proof; used by the incentive experiments where "identified"
  means exactly "can show an ownership proof" (Figure 3's abstraction).
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..crypto.rng import DeterministicRng
from ..faults.breaker import BreakerPolicy, CircuitBreaker
from ..faults.retry import ReliableChannel, RetryPolicy
from ..obs import default_registry, get_logger, trace
from ..poc.scheme import (
    NON_OWNERSHIP,
    OWNERSHIP,
    PocCredential,
    PocScheme,
    decode_poc_proof,
)
from ..supplychain.quality import QualityOracle
from .detection import (
    CLAIM_NON_PROCESSING,
    CLAIM_PROCESSING,
    INVALID_PROOF,
    REFUSAL,
    TIMEOUT,
    UNRESPONSIVE,
    WRONG_NEXT,
    WRONG_TRACE,
    Violation,
)
from .errors import NetworkTimeout, PocListError
from .messages import (
    BAD_QUERY,
    GOOD_QUERY,
    NextParticipantRequest,
    NextParticipantResponse,
    ProofResponse,
    QueryRequest,
    RevealRequest,
)
from .network import SimNetwork
from .poclist import PocList
from .reputation import ReputationEngine, ReputationPolicy, apply_query_awards

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store import ProxyStateStore

__all__ = ["QueryProxy", "QueryResult", "ProbeOutcome"]

_log = get_logger(__name__)

# Sentinel distinguishing "the request timed out" from a None response.
_TIMED_OUT = object()


@dataclass(frozen=True)
class ProbeOutcome:
    """What one query interaction with one participant established."""

    participant_id: str
    identified: bool
    trace: tuple[int, bytes] | None = None
    violations: tuple[Violation, ...] = ()


@dataclass
class _PendingProbe:
    """A probe whose proof verification has been deferred for batching."""

    participant_id: str
    poc: PocCredential
    kind: str
    product_id: int
    proof: object | None = None
    outcome: ProbeOutcome | None = None


@dataclass
class QueryResult:
    """The outcome of one product path information query."""

    product_id: int
    quality: str  # "good" | "bad"
    task_id: str | None = None
    path: list[str] = field(default_factory=list)
    traces: dict[str, bytes] = field(default_factory=dict)
    violations: list[Violation] = field(default_factory=list)
    messages: int = 0
    bytes_sent: int = 0
    reputation_applied: bool = False
    # Tasks a degraded sweep could not reach (dark shard, replicas
    # exhausted).  Part of the semantic outcome: a partial answer must
    # never be byte-identical to a complete one.
    missing_tasks: list[str] = field(default_factory=list)
    # The causal tree this query's spans belong to; transport metadata
    # like messages/bytes_sent, so excluded from equality and from
    # canonical_bytes() below.
    trace_id: str | None = field(default=None, compare=False)

    @property
    def found(self) -> bool:
        return bool(self.path)

    @property
    def degraded(self) -> bool:
        """Whether part of the fan-out was unreachable (explicit partial)."""
        return bool(self.missing_tasks)

    def canonical_bytes(self) -> bytes:
        """Semantic identity of the query outcome, transport-independent.

        Encodes everything the protocol *concluded* — product, quality,
        task, path order, traces, violations — and nothing about how the
        wire behaved (``messages``/``bytes_sent`` vary under retries and
        routing).  Two deployments that answer a query identically
        produce byte-identical encodings; this is what the sharded
        tier's correctness tests compare against the monolithic proxy.
        """

        def pack_str(text: str) -> bytes:
            raw = text.encode()
            return struct.pack(">H", len(raw)) + raw

        def pack_bytes(raw: bytes) -> bytes:
            return struct.pack(">I", len(raw)) + raw

        def pack_uint(value: int) -> bytes:
            width = max(1, (value.bit_length() + 7) // 8)
            return struct.pack(">H", width) + value.to_bytes(width, "big")

        parts = [b"QR1", pack_uint(self.product_id), pack_str(self.quality)]
        parts.append(b"\x00" if self.task_id is None else b"\x01" + pack_str(self.task_id))
        parts.append(struct.pack(">H", len(self.path)))
        parts.extend(pack_str(hop) for hop in self.path)
        parts.append(struct.pack(">H", len(self.traces)))
        for participant_id in sorted(self.traces):
            parts.append(pack_str(participant_id))
            parts.append(pack_bytes(self.traces[participant_id]))
        parts.append(struct.pack(">H", len(self.violations)))
        for violation in self.violations:
            parts.append(pack_str(violation.kind))
            parts.append(pack_str(violation.participant_id))
            parts.append(pack_uint(violation.product_id))
            parts.append(pack_str(violation.detail))
            parts.append(b"\x01" if violation.attributable else b"\x00")
        # Degraded-coverage marker: appended only when a sweep came back
        # partial, so complete results stay byte-identical to pre-marker
        # encodings (and to every non-degraded deployment's answer).
        if self.missing_tasks:
            parts.append(b"DG1")
            parts.append(struct.pack(">H", len(self.missing_tasks)))
            parts.extend(pack_str(task) for task in sorted(self.missing_tasks))
        return b"".join(parts)


class QueryProxy:
    """The trusted proxy: POC storage, query issuing, reputation award."""

    def __init__(
        self,
        scheme: PocScheme,
        network: SimNetwork,
        oracle: QualityOracle,
        policy: ReputationPolicy | None = None,
        identity: str = "proxy",
        store: "ProxyStateStore | None" = None,
        retry: RetryPolicy | None = None,
        breaker: BreakerPolicy | None = None,
    ):
        self.scheme = scheme
        self.network = network
        self.oracle = oracle
        self.identity = identity
        self.store = store
        # Every outbound request goes through a reliable channel: retries
        # with deterministic backoff when a policy is set, a pure
        # pass-through (byte-identical wire) when it is not.
        self.channel = ReliableChannel(
            network, retry, DeterministicRng(f"retry/{identity}")
        )
        # Per-participant quarantine: consecutive wire-level failures open
        # the circuit, clocked on the network's simulated milliseconds.
        self.breaker = (
            CircuitBreaker(breaker, lambda: network.stats.simulated_ms)
            if breaker is not None
            else None
        )
        # With a durable store attached, every award is journaled the
        # moment the engine applies it (the sink fires inside award()).
        sink = store.record_award if store is not None else None
        self.reputation = ReputationEngine(policy, sink=sink)
        self.poc_lists: dict[str, PocList] = {}
        # The paper's POC-queue per initial participant: (task_id, POC).
        self.poc_queues: dict[str, list[tuple[str, PocCredential]]] = {}
        # Crash-injection hook for the sharded tier's failover tests: when
        # set, called with the protocol stage name ("probe" | "refuse" |
        # "reveal") at each crashable point; raising simulates this proxy
        # process dying mid-query.
        self.failpoint = None
        network.register(identity, self)

    # -- distribution-phase interface -------------------------------------------

    def receive_poc_list(self, poc_list: PocList, product_ids=None) -> None:
        """Validate and store a submitted POC list (Section IV.B / IV.D).

        ``product_ids`` — the task's product ids — is routing metadata the
        sharded :class:`~repro.sharding.router.ProxyRouter` needs for
        placement; the monolithic proxy accepts and ignores it so the
        distribution phase can hand it over uniformly.
        """
        del product_ids
        poc_list.validate()
        if poc_list.task_id in self.poc_lists:
            raise PocListError(f"duplicate POC list for task {poc_list.task_id!r}")
        submitter_poc = poc_list.poc_of(poc_list.submitted_by)
        if submitter_poc is None:
            raise PocListError("submitter POC missing")
        self._accept_poc_list(poc_list, submitter_poc)
        if self.store is not None:
            self.store.record_poc_list(poc_list, self.scheme.backend)
        default_registry().counter("proxy.poc_lists_received").inc()
        _log.info(
            "POC list for task %r accepted from %r",
            poc_list.task_id, poc_list.submitted_by,
        )

    def _accept_poc_list(self, poc_list: PocList, submitter_poc: PocCredential) -> None:
        self.poc_lists[poc_list.task_id] = poc_list
        self.poc_queues.setdefault(poc_list.submitted_by, []).append(
            (poc_list.task_id, submitter_poc)
        )

    def load_from_store(self) -> None:
        """Rebuild POC lists, queues, and the reputation ledger after a crash.

        Replays the attached store's recovered state in journal order:
        POC lists decode through the scheme's backend (so the rebuilt
        credentials are byte-identical to what was submitted) and awards
        re-apply through :meth:`ReputationEngine.replay`, which skips the
        journaling sink — recovery must not journal what it reads.
        """
        if self.store is None:
            raise ValueError("proxy has no state store attached")
        with trace.span("proxy.restore", events=self.store.state.applied):
            for raw in self.store.state.poc_lists.values():
                poc_list = PocList.from_bytes(raw, self.scheme.backend)
                submitter_poc = poc_list.poc_of(poc_list.submitted_by)
                if submitter_poc is None:
                    raise PocListError("journaled list lost its submitter POC")
                self._accept_poc_list(poc_list, submitter_poc)
            for event in self.store.state.awards:
                self.reputation.replay(event)
        default_registry().counter("proxy.restores").inc()
        _log.info(
            "restored %d POC lists and %d awards from %s",
            len(self.store.state.poc_lists),
            len(self.store.state.awards),
            self.store.state_dir,
        )

    def handle_message(self, sender, message):
        """Answer public-parameter requests; everything else is one-way."""
        from .messages import PsBroadcast, PsRequest

        del sender
        if isinstance(message, PsRequest):
            return PsBroadcast("ps")
        return None

    # -- resilient requests --------------------------------------------------------

    def _request(self, recipient: str, message):
        """One logical request; ``_TIMED_OUT`` when retries were exhausted.

        Without a retry policy a lossy network gets exactly one attempt,
        so the timeout semantics are uniform either way.
        """
        try:
            return self.channel.request(self.identity, recipient, message)
        except NetworkTimeout:
            default_registry().counter("proxy.request_timeouts").inc()
            return _TIMED_OUT

    def _breaker_failure(self, participant_id: str) -> None:
        if self.breaker is not None:
            self.breaker.record_failure(participant_id)

    def _breaker_success(self, participant_id: str) -> None:
        if self.breaker is not None:
            self.breaker.record_success(participant_id)

    def _quarantined(self, participant_id: str) -> bool:
        if self.breaker is None or self.breaker.allow(participant_id):
            return False
        default_registry().counter("proxy.breaker.skips").inc()
        return True

    def _fire_failpoint(self, stage: str) -> None:
        if self.failpoint is not None:
            self.failpoint(stage)

    # -- probing one participant ---------------------------------------------------

    def _probe(
        self, participant_id: str, poc: PocCredential, kind: str, product_id: int
    ) -> ProbeOutcome:
        """One query interaction: request, verify, attribute."""
        pending = self._request_proof(participant_id, poc, kind, product_id)
        if pending.outcome is not None:
            return pending.outcome
        verdict = self.scheme.poc_verify(poc, product_id, pending.proof)
        return self._judge(pending, verdict)

    def _observe_stage(self, stage: str, started: float) -> None:
        default_registry().histogram("query.stage_ms", stage=stage).observe(
            (time.perf_counter() - started) * 1000.0
        )

    def _request_proof(
        self, participant_id: str, poc: PocCredential, kind: str, product_id: int
    ) -> "_PendingProbe":
        """Phase 1 of a probe: request and parse, defer verification.

        Returns a pending probe whose ``outcome`` is already set when the
        interaction resolved without needing a proof verification (refusal,
        unparseable proof); otherwise ``proof`` awaits a verdict, letting
        :meth:`sweep_query` verify a whole round in one batch.
        """
        started = time.perf_counter()
        try:
            with trace.span("query.probe", participant=participant_id, kind=kind):
                return self._request_proof_impl(participant_id, poc, kind, product_id)
        finally:
            self._observe_stage("probe", started)

    def _request_proof_impl(
        self, participant_id: str, poc: PocCredential, kind: str, product_id: int
    ) -> "_PendingProbe":
        self._fire_failpoint("probe")
        metrics = default_registry()
        pending = _PendingProbe(participant_id, poc, kind, product_id)
        if self._quarantined(participant_id):
            # Circuit open: don't spend retries on a dark participant —
            # attribute the silence exactly like the deletion strategy.
            violation = Violation(
                UNRESPONSIVE,
                participant_id,
                product_id,
                "quarantined: circuit breaker open",
            )
            pending.outcome = ProbeOutcome(
                participant_id, kind == BAD_QUERY, violations=(violation,)
            )
            return pending
        metrics.counter("query.probes", kind=kind).inc()
        request = QueryRequest(kind, product_id, poc.to_bytes(self.scheme.backend))
        response = self._request(participant_id, request)
        if response is _TIMED_OUT:
            metrics.counter("query.timeouts", kind=kind).inc()
            self._breaker_failure(participant_id)
            # A bad-product query presumes involvement on silence (the
            # participant cannot show non-ownership); a good-product one
            # simply cannot identify the participant.
            violation = Violation(
                TIMEOUT, participant_id, product_id, "no response within deadline"
            )
            pending.outcome = ProbeOutcome(
                participant_id, kind == BAD_QUERY, violations=(violation,)
            )
            return pending
        if not isinstance(response, ProofResponse) or response.refused:
            self._fire_failpoint("refuse")
            self._breaker_success(participant_id)  # a refusal is still an answer
            metrics.counter("query.refusals", kind=kind).inc()
            if kind == BAD_QUERY:
                # Cannot show non-ownership: treated as having processed it.
                pending.outcome = self._demand_reveal(participant_id, poc, product_id, ())
            else:
                pending.outcome = ProbeOutcome(participant_id, False)
            return pending

        proof, parse_violation = self._parse_proof(
            participant_id, product_id, response.proof_bytes
        )
        if proof is None:
            # Wire-level garbage counts toward quarantine like a timeout.
            self._breaker_failure(participant_id)
            if kind == BAD_QUERY:
                pending.outcome = self._demand_reveal(
                    participant_id, poc, product_id, (parse_violation,)
                )
            else:
                pending.outcome = ProbeOutcome(
                    participant_id, False, violations=(parse_violation,)
                )
            return pending
        self._breaker_success(participant_id)
        pending.proof = proof
        return pending

    def _judge(self, pending: "_PendingProbe", verdict) -> ProbeOutcome:
        """Phase 2 of a probe: turn a verification verdict into an outcome."""
        participant_id = pending.participant_id
        poc = pending.poc
        kind = pending.kind
        product_id = pending.product_id
        proof = pending.proof
        if kind == GOOD_QUERY:
            if proof.kind == OWNERSHIP:
                if verdict.status == "trace":
                    return ProbeOutcome(participant_id, True, verdict.trace)
                violation = Violation(
                    CLAIM_PROCESSING,
                    participant_id,
                    product_id,
                    "invalid ownership proof in good-product query",
                )
                return ProbeOutcome(participant_id, False, violations=(violation,))
            if verdict.status == "valid":
                return ProbeOutcome(participant_id, False)
            violation = Violation(
                INVALID_PROOF, participant_id, product_id, "invalid non-ownership proof"
            )
            return ProbeOutcome(participant_id, False, violations=(violation,))

        # BAD_QUERY
        if proof.kind == NON_OWNERSHIP:
            if verdict.status == "valid":
                return ProbeOutcome(participant_id, False)
            violation = Violation(
                CLAIM_NON_PROCESSING,
                participant_id,
                product_id,
                "invalid non-ownership proof in bad-product query",
            )
            return self._demand_reveal(participant_id, poc, product_id, (violation,))
        if verdict.status == "trace":
            return ProbeOutcome(participant_id, True, verdict.trace)
        violation = Violation(
            WRONG_TRACE, participant_id, product_id, "invalid ownership proof"
        )
        return self._demand_reveal(participant_id, poc, product_id, (violation,))

    def _demand_reveal(
        self,
        participant_id: str,
        poc: PocCredential,
        product_id: int,
        prior: tuple[Violation, ...],
    ) -> ProbeOutcome:
        """Bad-product step 2: require the ownership proof (Section IV.C)."""
        started = time.perf_counter()
        try:
            with trace.span("query.reveal", participant=participant_id):
                return self._demand_reveal_impl(participant_id, poc, product_id, prior)
        finally:
            self._observe_stage("reveal", started)

    def _demand_reveal_impl(
        self,
        participant_id: str,
        poc: PocCredential,
        product_id: int,
        prior: tuple[Violation, ...],
    ) -> ProbeOutcome:
        self._fire_failpoint("reveal")
        default_registry().counter("query.blame_reveals").inc()
        response = self._request(participant_id, RevealRequest(product_id))
        if response is _TIMED_OUT:
            self._breaker_failure(participant_id)
            violation = Violation(
                TIMEOUT, participant_id, product_id, "ownership reveal timed out"
            )
            return ProbeOutcome(
                participant_id, True, violations=prior + (violation,)
            )
        if not isinstance(response, ProofResponse) or response.refused:
            violation = Violation(
                REFUSAL, participant_id, product_id, "refused ownership reveal"
            )
            return ProbeOutcome(
                participant_id, True, violations=prior + (violation,)
            )
        proof, parse_violation = self._parse_proof(
            participant_id, product_id, response.proof_bytes
        )
        if proof is not None and proof.kind == OWNERSHIP:
            verdict = self.scheme.poc_verify(poc, product_id, proof)
            if verdict.status == "trace":
                return ProbeOutcome(
                    participant_id, True, verdict.trace, violations=prior
                )
        extra = parse_violation or Violation(
            WRONG_TRACE, participant_id, product_id, "invalid revealed trace"
        )
        return ProbeOutcome(participant_id, True, violations=prior + (extra,))

    def _parse_proof(self, participant_id: str, product_id: int, proof_bytes: bytes):
        try:
            return decode_poc_proof(self.scheme.backend, proof_bytes), None
        except (ValueError, IndexError) as exc:
            return None, Violation(
                INVALID_PROOF, participant_id, product_id, f"unparseable proof: {exc}"
            )

    # -- the paper's interactive traversal ----------------------------------------

    def query_product(
        self,
        product_id: int,
        quality: str | None = None,
        apply_reputation: bool = True,
    ) -> QueryResult:
        """A full good/bad product path information query."""
        if quality is None:
            quality = "bad" if self.oracle.is_bad(product_id) else "good"
        kind = BAD_QUERY if quality == "bad" else GOOD_QUERY
        before = (self.network.stats.messages, self.network.stats.bytes_sent)
        result = QueryResult(product_id, quality)
        default_registry().counter("query.requested", mode="interactive").inc()
        started = time.perf_counter()

        with trace.span(
            "query.interactive", product=f"{product_id:#x}", quality=quality
        ) as span:
            if span is not None:
                result.trace_id = span.trace_id
            starts = self._identify_starts(kind, product_id, result)
            for start, poc_list in starts:
                if result.task_id is None:
                    result.task_id = poc_list.task_id
                self._walk_path(start, poc_list, kind, product_id, result)

        result.messages = self.network.stats.messages - before[0]
        result.bytes_sent = self.network.stats.bytes_sent - before[1]
        if apply_reputation:
            self._apply_awards(result)
        self._record_result_metrics("interactive", result, started)
        return result

    def _identify_starts(
        self, kind: str, product_id: int, result: QueryResult
    ) -> list[tuple[str, PocList]]:
        """Query every initial participant via its POC queue (Section IV.D).

        Every initial that proves ownership is traversed: a rogue initial
        claiming someone else's product cannot silence the true origin —
        both claims are walked, identified, and scored, so the impostor
        shares the product's double-edged fate.
        """
        starts: list[tuple[str, PocList]] = []
        for initial_id in sorted(self.poc_queues):
            for task_id, poc in self.poc_queues[initial_id]:
                outcome = self._probe(initial_id, poc, kind, product_id)
                result.violations.extend(outcome.violations)
                if outcome.identified:
                    if outcome.trace is not None:
                        result.traces[initial_id] = outcome.trace[1]
                    starts.append((initial_id, self.poc_lists[task_id]))
                    break  # one claim per initial suffices
        return starts

    def _walk_path(
        self,
        start: str,
        poc_list: PocList,
        kind: str,
        product_id: int,
        result: QueryResult,
    ) -> None:
        if start not in result.path:
            result.path.append(start)
        current = start
        visited = {start}
        while True:
            response = self._request(current, NextParticipantRequest(product_id))
            if response is _TIMED_OUT:
                # The hop already proved ownership; its silence on the
                # next-pointer is attributable, and the POC-list child
                # scan below still lets the walk continue without it.
                self._breaker_failure(current)
                result.violations.append(
                    Violation(
                        TIMEOUT,
                        current,
                        product_id,
                        "next-participant request timed out",
                    )
                )
                claimed = None
            else:
                claimed = (
                    response.next_participant
                    if isinstance(response, NextParticipantResponse)
                    else None
                )

            candidates: list[str] = []
            claimed_is_pair = claimed is not None and poc_list.has_pair(current, claimed)
            if claimed is not None and not claimed_is_pair:
                # Not a child in the POC list: immediately attributable.
                result.violations.append(
                    Violation(
                        WRONG_NEXT,
                        current,
                        product_id,
                        f"claimed next {claimed!r} is not a POC-list child",
                    )
                )
            if claimed_is_pair and claimed not in visited:
                candidates.append(claimed)
            # Fallback scan over the remaining POC-list children.
            for child in poc_list.children_of(current):
                if child not in visited and child not in candidates:
                    candidates.append(child)

            found = None
            for index, candidate in enumerate(candidates):
                outcome = self._probe(
                    candidate, poc_list.poc_of(candidate), kind, product_id
                )
                result.violations.extend(outcome.violations)
                if outcome.identified:
                    found = candidate
                    if outcome.trace is not None:
                        result.traces[candidate] = outcome.trace[1]
                    break
                if index == 0 and candidate == claimed and claimed_is_pair:
                    # Case 2 of "wrong next": a real child that never
                    # processed the product.
                    result.violations.append(
                        Violation(
                            WRONG_NEXT,
                            current,
                            product_id,
                            f"claimed next {claimed!r} shows it did not process",
                            attributable=False,
                        )
                    )

            if found is None:
                if claimed is None and not poc_list.is_leaf(current):
                    # Claimed end-of-path but has children; since no child
                    # proves processing either, accept the end silently —
                    # the product may genuinely have stopped here.
                    pass
                return
            if found not in result.path:
                result.path.append(found)
            visited.add(found)
            current = found

    # -- sweep mode (incentive experiments) ---------------------------------------

    def sweep_query(
        self,
        product_id: int,
        quality: str | None = None,
        task_id: str | None = None,
        apply_reputation: bool = True,
    ) -> QueryResult:
        """Ask every POC-list participant; identified = proves ownership."""
        if quality is None:
            quality = "bad" if self.oracle.is_bad(product_id) else "good"
        kind = BAD_QUERY if quality == "bad" else GOOD_QUERY
        before = (self.network.stats.messages, self.network.stats.bytes_sent)
        result = QueryResult(product_id, quality, task_id=task_id)
        default_registry().counter("query.requested", mode="sweep").inc()
        started = time.perf_counter()

        tasks = [task_id] if task_id else sorted(self.poc_lists)
        with trace.span(
            "query.sweep",
            product=f"{product_id:#x}",
            quality=quality,
            tasks=len(tasks),
        ) as query_span:
            if query_span is not None:
                result.trace_id = query_span.trace_id
            for tid in tasks:
                poc_list = self.poc_lists[tid]
                # Phase 1: collect every participant's response for this round.
                pending = [
                    self._request_proof(
                        participant_id, poc_list.poc_of(participant_id), kind, product_id
                    )
                    for participant_id in poc_list.participants()
                ]
                # Phase 2: verify the round's proofs as one batch.
                to_verify = [probe for probe in pending if probe.outcome is None]
                verify_started = time.perf_counter()
                with trace.span("query.sweep.verify_round", n=len(to_verify)):
                    verdicts = iter(
                        self.scheme.poc_verify_many(
                            [(probe.poc, product_id, probe.proof) for probe in to_verify]
                        )
                    )
                self._observe_stage("verify", verify_started)
                default_registry().counter("query.proofs_verified").inc(len(to_verify))
                # Phase 3: judge in participant order (reveals happen here).
                for probe in pending:
                    outcome = (
                        probe.outcome
                        if probe.outcome is not None
                        else self._judge(probe, next(verdicts))
                    )
                    result.violations.extend(outcome.violations)
                    if outcome.identified and probe.participant_id not in result.path:
                        result.path.append(probe.participant_id)
                        if outcome.trace is not None:
                            result.traces[probe.participant_id] = outcome.trace[1]

        result.messages = self.network.stats.messages - before[0]
        result.bytes_sent = self.network.stats.bytes_sent - before[1]
        if apply_reputation:
            self._apply_awards(result)
        self._record_result_metrics("sweep", result, started)
        return result

    # -- market sampling ----------------------------------------------------------

    def sample_and_query(
        self,
        market_products: list[int],
        rate: float,
        rng,
        apply_reputation: bool = True,
    ) -> list[QueryResult]:
        """Self-issued queries over a market sample (Section II.C).

        The proxy "can also adjust the query frequency by sampling
        products from the market, and issue queries for them by itself" —
        this is the knob that makes good products queryable at all, and
        hence what gives the positive edge of the award its probability
        mass in the incentive analysis.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be a probability")
        results = []
        for product_id in market_products:
            if rng.random() < rate:
                results.append(
                    self.query_product(product_id, apply_reputation=apply_reputation)
                )
        return results

    # -- per-query metrics ---------------------------------------------------

    def _record_result_metrics(
        self, mode: str, result: QueryResult, started: float | None = None
    ) -> None:
        """Per-interaction accounting once a query result is final."""
        if self.store is not None:
            self.store.record_query(result, mode)
        metrics = default_registry()
        metrics.counter("query.completed", mode=mode, quality=result.quality).inc()
        if started is not None:
            metrics.histogram("query.latency_ms", mode=mode).observe(
                (time.perf_counter() - started) * 1000.0
            )
        metrics.counter("query.identified").inc(len(result.path))
        metrics.histogram("query.messages", buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512)).observe(result.messages)
        for violation in result.violations:
            metrics.counter("query.violations", kind=violation.kind).inc()
        if result.violations:
            _log.info(
                "query %#x (%s/%s): %d violations, path=%s",
                result.product_id, mode, result.quality,
                len(result.violations), result.path,
            )

    # -- reputation ------------------------------------------------------------

    def _apply_awards(self, result: QueryResult) -> None:
        """The double-edged award strategy (Figure 2), via the merge point."""
        apply_query_awards(self.reputation, result)
