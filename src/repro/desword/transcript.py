"""Query transcripts: an auditable record of protocol interactions.

A :class:`TranscriptRecorder` taps the simulated network and turns the
message flow into a human-readable, append-only audit log — what a real
regulator would retain as evidence alongside the reputation ledger.
Entries carry the wire size of each message, so a transcript doubles as a
per-interaction communication breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .messages import (
    Message,
    NextParticipantRequest,
    NextParticipantResponse,
    ProofResponse,
    QueryRequest,
    RevealRequest,
)
from .network import SimNetwork

__all__ = ["TranscriptEntry", "TranscriptRecorder"]


@dataclass(frozen=True)
class TranscriptEntry:
    """One observed message."""

    index: int
    sender: str
    recipient: str
    kind: str
    size_bytes: int
    summary: str

    def __str__(self) -> str:
        return (
            f"#{self.index:04d} {self.sender} -> {self.recipient} "
            f"[{self.kind}, {self.size_bytes}B] {self.summary}"
        )


def _summarise(message: Message) -> str:
    if isinstance(message, QueryRequest):
        return f"{message.query_kind}-query for {message.product_id:#x}"
    if isinstance(message, ProofResponse):
        return "refused" if message.refused else "proof returned"
    if isinstance(message, RevealRequest):
        return f"reveal demanded for {message.product_id:#x}"
    if isinstance(message, NextParticipantRequest):
        return f"next-hop asked for {message.product_id:#x}"
    if isinstance(message, NextParticipantResponse):
        return (
            f"next is {message.next_participant}"
            if message.next_participant
            else "end of path claimed"
        )
    return ""


@dataclass
class TranscriptRecorder:
    """Observes a network and accumulates transcript entries."""

    entries: list[TranscriptEntry] = field(default_factory=list)

    def attach(self, network: SimNetwork) -> "TranscriptRecorder":
        network.add_tap(self._observe)
        return self

    def _observe(self, sender: str, recipient: str, message: Message) -> None:
        self.entries.append(
            TranscriptEntry(
                index=len(self.entries),
                sender=sender,
                recipient=recipient,
                kind=message.kind,
                size_bytes=message.size_bytes(),
                summary=_summarise(message),
            )
        )

    def involving(self, participant_id: str) -> list[TranscriptEntry]:
        return [
            entry
            for entry in self.entries
            if participant_id in (entry.sender, entry.recipient)
        ]

    def total_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.entries)

    def by_kind(self) -> dict[str, tuple[int, int]]:
        """Per message kind: (entry count, total wire bytes).

        Mirrors the registry's per-interaction ``net.messages`` /
        ``net.bytes`` counters, so a transcript can be reconciled against
        the process-wide metrics export entry by entry.
        """
        summary: dict[str, tuple[int, int]] = {}
        for entry in self.entries:
            count, size = summary.get(entry.kind, (0, 0))
            summary[entry.kind] = (count + 1, size + entry.size_bytes)
        return summary

    def render(self, last: int | None = None) -> str:
        entries = self.entries if last is None else self.entries[-last:]
        return "\n".join(str(entry) for entry in entries)

    def clear(self) -> None:
        self.entries.clear()
