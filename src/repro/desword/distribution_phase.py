"""The distribution phase (Section IV.B).

After a distribution task's physical flow, the involved participants build
their POCs and assemble the POC list: the initial participant broadcasts
the public-parameter handle, every child transmits its POC to its parents
to form POC pairs, all pairs flow back to the initial participant, and the
composed list (ps, {(POC_vi, POC_vj)}) is submitted to the proxy.

On an unreliable network every wire step runs through a
:class:`~repro.faults.retry.ReliableChannel`; when even retries cannot get
a message through, the phase raises
:class:`~repro.desword.errors.DistributionPhaseError` carrying a
:class:`DistributionResume` checkpoint, and a later re-run with that
checkpoint skips the already-delivered steps instead of restarting — POC
aggregation is deterministic per task, so the resumed list is
byte-identical to an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.rng import DeterministicRng
from ..faults.retry import ReliableChannel, RetryPolicy
from ..obs import default_registry, get_logger, trace
from ..supplychain.distribution import TaskRecord
from .errors import DistributionPhaseError, NetworkTimeout
from .messages import PocListSubmission, PocTransfer, PsBroadcast, PsRequest
from .network import SimNetwork
from .nodes import ParticipantNode
from .poclist import PocList
from .proxy import QueryProxy

__all__ = [
    "DistributionPhaseResult",
    "DistributionResume",
    "replay_node_credentials",
    "run_distribution_phase",
]

_log = get_logger(__name__)


@dataclass
class DistributionPhaseResult:
    """What the phase produced plus its communication cost."""

    poc_list: PocList
    messages: int
    bytes_sent: int
    poc_sizes: dict[str, int]


@dataclass
class DistributionResume:
    """Checkpoint of a stalled phase: which wire steps already happened.

    ``epoch`` counts phase attempts, salting the retry channel's
    idempotency ids so a resumed run never collides with ids the crashed
    run already consumed.
    """

    task_id: str
    epoch: int = 0
    ps_id: str | None = None
    ps_delivered: set[str] = field(default_factory=set)
    transfers_done: set[tuple[str, str]] = field(default_factory=set)
    reports_done: set[tuple[str, str]] = field(default_factory=set)
    submitted: bool = False


def shipments_from_record(record: TaskRecord) -> dict[str, dict[int, str | None]]:
    """Each participant's shipping log, reconstructed from ground truth."""
    logs: dict[str, dict[int, str | None]] = {}
    for product_id, path in record.product_paths.items():
        for position, participant_id in enumerate(path):
            next_hop = path[position + 1] if position + 1 < len(path) else None
            logs.setdefault(participant_id, {})[product_id] = next_hop
    return logs


def edges_used(record: TaskRecord) -> set[tuple[str, str]]:
    """The (parent, child) production relations realised by the task."""
    edges: set[tuple[str, str]] = set()
    for path in record.product_paths.values():
        edges.update(zip(path, path[1:]))
    return edges


def replay_node_credentials(
    nodes: dict[str, ParticipantNode], record: TaskRecord
) -> None:
    """Rebuild node-side task state without touching the proxy.

    The durable store journals only the *proxy's* half of a distribution
    task; the participants' halves — POC credentials, decommitments,
    shipping logs — are deterministic functions of the deployment seed.
    This mirrors step 2 of the phase exactly (same rng forks, same
    incremental priors, same batched aggregation), so the rebuilt
    credentials are byte-identical to the originals, and no message ever
    reaches the proxy — nothing is re-journaled, nothing re-awarded.
    """
    task_id = record.task.task_id
    logs = shipments_from_record(record)
    traces_by_pid = {}
    rngs = {}
    priors = {}
    to_aggregate = []
    for participant_id in record.involved_participants:
        node = nodes[participant_id]
        node.record_shipments(logs.get(participant_id, {}))
        if node.poc_for_task(task_id) is not None:
            continue
        to_aggregate.append(participant_id)
        committed, rng = node.poc_input(task_id)
        traces_by_pid[participant_id] = committed
        rngs[participant_id] = rng
        priors[participant_id] = node.latest_dpoc()
    if not to_aggregate:
        return
    scheme = nodes[record.task.initial_participant].scheme
    with trace.span("distribution.replay", participants=len(to_aggregate)):
        aggregated = scheme.poc_agg_many(traces_by_pid, rngs=rngs, priors=priors)
    for participant_id in to_aggregate:
        poc, dpoc = aggregated[participant_id]
        nodes[participant_id].accept_credential(
            poc, dpoc, traces_by_pid[participant_id], task_id
        )


def run_distribution_phase(
    nodes: dict[str, ParticipantNode],
    record: TaskRecord,
    network: SimNetwork,
    proxy: QueryProxy,
    ps_id: str = "ps",
    retry: RetryPolicy | None = None,
    resume: DistributionResume | None = None,
) -> DistributionPhaseResult:
    """Build and submit the POC list for one completed distribution task."""
    with trace.span(
        "distribution.phase",
        task=record.task.task_id,
        participants=len(record.involved_participants),
        products=len(record.task.product_ids),
    ):
        return _run_distribution_phase(
            nodes, record, network, proxy, ps_id, retry, resume
        )


def _run_distribution_phase(
    nodes: dict[str, ParticipantNode],
    record: TaskRecord,
    network: SimNetwork,
    proxy: QueryProxy,
    ps_id: str,
    retry: RetryPolicy | None,
    resume: DistributionResume | None,
) -> DistributionPhaseResult:
    before = (network.stats.messages, network.stats.bytes_sent)
    task_id = record.task.task_id
    initial = record.task.initial_participant
    involved = record.involved_participants
    backend = nodes[initial].scheme.backend

    if resume is None:
        resume = DistributionResume(task_id)
    elif resume.task_id != task_id:
        raise ValueError(
            f"resume checkpoint is for task {resume.task_id!r}, not {task_id!r}"
        )
    resume.epoch += 1
    channel = ReliableChannel(
        network, retry, DeterministicRng(f"dist/{task_id}/{resume.epoch}")
    )

    def _wire(op, *args):
        """Run one networked step, converting exhaustion into a resumable stall."""
        try:
            return op(*args)
        except NetworkTimeout as exc:
            default_registry().counter("distribution.stalls").inc()
            raise DistributionPhaseError(task_id, resume, str(exc)) from exc

    # Step 1: the initial participant requests ps from the proxy, then
    # broadcasts the handle to the other involved participants.
    if resume.ps_id is None:
        response = _wire(
            channel.request, initial, proxy.identity, PsRequest(task_id)
        )
        resume.ps_id = response.ps_id if isinstance(response, PsBroadcast) else ps_id
    ps_id = resume.ps_id
    for participant_id in involved:
        if participant_id != initial and participant_id not in resume.ps_delivered:
            _wire(channel.send, initial, participant_id, PsBroadcast(ps_id))
            resume.ps_delivered.add(participant_id)

    # Step 2: every involved participant builds its POC and learns its
    # shipping log from the completed physical flow.  The aggregations are
    # independent, so they run through the scheme's engine in one batch —
    # in parallel when a process-pool executor is configured.  Each node's
    # randomness comes from its own rng fork, so the credentials are
    # byte-identical to the per-node serial path — including on a resumed
    # run, where already-credentialed nodes just reuse their POC.
    logs = shipments_from_record(record)
    traces_by_pid = {}
    rngs = {}
    priors = {}
    pocs = {}
    to_aggregate = []
    for participant_id in involved:
        node = nodes[participant_id]
        node.record_shipments(logs.get(participant_id, {}))
        existing = node.poc_for_task(task_id)
        if existing is not None:
            pocs[participant_id] = existing
            continue
        to_aggregate.append(participant_id)
        committed, rng = node.poc_input(task_id)
        traces_by_pid[participant_id] = committed
        rngs[participant_id] = rng
        # A participant's POC for task k+1 commits a superset of its task-k
        # traces, so the previous DPOC seeds an incremental recommit.
        priors[participant_id] = node.latest_dpoc()
    scheme = nodes[initial].scheme
    if to_aggregate:
        with trace.span("distribution.poc_agg", participants=len(to_aggregate)):
            aggregated = scheme.poc_agg_many(traces_by_pid, rngs=rngs, priors=priors)
        for participant_id in to_aggregate:
            poc, dpoc = aggregated[participant_id]
            nodes[participant_id].accept_credential(
                poc, dpoc, traces_by_pid[participant_id], task_id
            )
            pocs[participant_id] = poc
    poc_sizes = {
        participant_id: len(pocs[participant_id].to_bytes(backend))
        for participant_id in involved
    }
    metrics = default_registry()
    metrics.counter("distribution.pocs_aggregated").inc(len(to_aggregate))
    metrics.counter("distribution.bytes_committed").inc(sum(poc_sizes.values()))

    # Step 3: children transmit POCs to parents to construct POC pairs.
    relations = edges_used(record)
    for parent, child in sorted(relations):
        if (parent, child) in resume.transfers_done:
            continue
        _wire(
            channel.send,
            child,
            parent,
            PocTransfer(child, pocs[child].to_bytes(backend)),
        )
        resume.transfers_done.add((parent, child))

    # Step 4: pairs flow to the initial participant, who composes the list.
    poc_list = PocList(task_id, ps_id, initial)
    for participant_id in involved:
        poc_list.add_poc(pocs[participant_id])
    for parent, child in sorted(relations):
        if parent != initial and (parent, child) not in resume.reports_done:
            _wire(
                channel.send,
                parent,
                initial,
                PocTransfer(parent, pocs[parent].to_bytes(backend), 1),
            )
            resume.reports_done.add((parent, child))
        poc_list.add_pair(parent, child)

    # Step 5: submission to the proxy.
    if not resume.submitted:
        _wire(
            channel.send,
            initial,
            proxy.identity,
            PocListSubmission(task_id, poc_list.size_bytes(backend)),
        )
        # Product ids ride along as routing metadata: the sharded router
        # places the task by them, the monolith ignores them.
        proxy.receive_poc_list(poc_list, product_ids=record.task.product_ids)
        resume.submitted = True
    if proxy.store is not None:
        # A completed distribution task is a durability point: the list
        # (journaled by the proxy on acceptance) must survive a crash
        # regardless of the store's fsync batching window.
        proxy.store.sync()
        metrics.counter("distribution.tasks_persisted").inc()

    metrics.counter("distribution.tasks").inc()
    result = DistributionPhaseResult(
        poc_list=poc_list,
        messages=network.stats.messages - before[0],
        bytes_sent=network.stats.bytes_sent - before[1],
        poc_sizes=poc_sizes,
    )
    _log.info(
        "distribution task %r: %d POCs, %d msgs, %d bytes",
        task_id, len(involved), result.messages, result.bytes_sent,
    )
    return result
