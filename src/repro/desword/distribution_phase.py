"""The distribution phase (Section IV.B).

After a distribution task's physical flow, the involved participants build
their POCs and assemble the POC list: the initial participant broadcasts
the public-parameter handle, every child transmits its POC to its parents
to form POC pairs, all pairs flow back to the initial participant, and the
composed list (ps, {(POC_vi, POC_vj)}) is submitted to the proxy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import default_registry, get_logger, trace
from ..supplychain.distribution import TaskRecord
from .messages import PocListSubmission, PocTransfer, PsBroadcast, PsRequest
from .network import SimNetwork
from .nodes import ParticipantNode
from .poclist import PocList
from .proxy import QueryProxy

__all__ = ["DistributionPhaseResult", "run_distribution_phase"]

_log = get_logger(__name__)


@dataclass
class DistributionPhaseResult:
    """What the phase produced plus its communication cost."""

    poc_list: PocList
    messages: int
    bytes_sent: int
    poc_sizes: dict[str, int]


def shipments_from_record(record: TaskRecord) -> dict[str, dict[int, str | None]]:
    """Each participant's shipping log, reconstructed from ground truth."""
    logs: dict[str, dict[int, str | None]] = {}
    for product_id, path in record.product_paths.items():
        for position, participant_id in enumerate(path):
            next_hop = path[position + 1] if position + 1 < len(path) else None
            logs.setdefault(participant_id, {})[product_id] = next_hop
    return logs


def edges_used(record: TaskRecord) -> set[tuple[str, str]]:
    """The (parent, child) production relations realised by the task."""
    edges: set[tuple[str, str]] = set()
    for path in record.product_paths.values():
        edges.update(zip(path, path[1:]))
    return edges


def run_distribution_phase(
    nodes: dict[str, ParticipantNode],
    record: TaskRecord,
    network: SimNetwork,
    proxy: QueryProxy,
    ps_id: str = "ps",
) -> DistributionPhaseResult:
    """Build and submit the POC list for one completed distribution task."""
    with trace.span(
        "distribution.phase",
        task=record.task.task_id,
        participants=len(record.involved_participants),
        products=len(record.task.product_ids),
    ):
        return _run_distribution_phase(nodes, record, network, proxy, ps_id)


def _run_distribution_phase(
    nodes: dict[str, ParticipantNode],
    record: TaskRecord,
    network: SimNetwork,
    proxy: QueryProxy,
    ps_id: str,
) -> DistributionPhaseResult:
    before = (network.stats.messages, network.stats.bytes_sent)
    initial = record.task.initial_participant
    involved = record.involved_participants
    backend = nodes[initial].scheme.backend

    # Step 1: the initial participant requests ps from the proxy, then
    # broadcasts the handle to the other involved participants.
    response = network.request(initial, proxy.identity, PsRequest(record.task.task_id))
    if isinstance(response, PsBroadcast):
        ps_id = response.ps_id
    for participant_id in involved:
        if participant_id != initial:
            network.send(initial, participant_id, PsBroadcast(ps_id))

    # Step 2: every involved participant builds its POC and learns its
    # shipping log from the completed physical flow.  The aggregations are
    # independent, so they run through the scheme's engine in one batch —
    # in parallel when a process-pool executor is configured.  Each node's
    # randomness comes from its own rng fork, so the credentials are
    # byte-identical to the per-node serial path.
    logs = shipments_from_record(record)
    traces_by_pid = {}
    rngs = {}
    priors = {}
    for participant_id in involved:
        node = nodes[participant_id]
        node.record_shipments(logs.get(participant_id, {}))
        committed, rng = node.poc_input(record.task.task_id)
        traces_by_pid[participant_id] = committed
        rngs[participant_id] = rng
        # A participant's POC for task k+1 commits a superset of its task-k
        # traces, so the previous DPOC seeds an incremental recommit.
        priors[participant_id] = node.latest_dpoc()
    scheme = nodes[initial].scheme
    with trace.span("distribution.poc_agg", participants=len(involved)):
        aggregated = scheme.poc_agg_many(traces_by_pid, rngs=rngs, priors=priors)
    pocs = {}
    poc_sizes = {}
    for participant_id in involved:
        poc, dpoc = aggregated[participant_id]
        nodes[participant_id].accept_credential(
            poc, dpoc, traces_by_pid[participant_id], record.task.task_id
        )
        pocs[participant_id] = poc
        poc_sizes[participant_id] = len(poc.to_bytes(backend))
    metrics = default_registry()
    metrics.counter("distribution.pocs_aggregated").inc(len(involved))
    metrics.counter("distribution.bytes_committed").inc(sum(poc_sizes.values()))

    # Step 3: children transmit POCs to parents to construct POC pairs.
    relations = edges_used(record)
    for parent, child in sorted(relations):
        network.send(
            child, parent, PocTransfer(child, pocs[child].to_bytes(backend))
        )

    # Step 4: pairs flow to the initial participant, who composes the list.
    poc_list = PocList(record.task.task_id, ps_id, initial)
    for participant_id in involved:
        poc_list.add_poc(pocs[participant_id])
    for parent, child in sorted(relations):
        if parent != initial:
            network.send(
                parent, initial, PocTransfer(parent, pocs[parent].to_bytes(backend), 1)
            )
        poc_list.add_pair(parent, child)

    # Step 5: submission to the proxy.
    network.send(
        initial,
        proxy.identity,
        PocListSubmission(record.task.task_id, poc_list.size_bytes(backend)),
    )
    proxy.receive_poc_list(poc_list)
    if proxy.store is not None:
        # A completed distribution task is a durability point: the list
        # (journaled by the proxy on acceptance) must survive a crash
        # regardless of the store's fsync batching window.
        proxy.store.sync()
        metrics.counter("distribution.tasks_persisted").inc()

    metrics.counter("distribution.tasks").inc()
    result = DistributionPhaseResult(
        poc_list=poc_list,
        messages=network.stats.messages - before[0],
        bytes_sent=network.stats.bytes_sent - before[1],
        poc_sizes=poc_sizes,
    )
    _log.info(
        "distribution task %r: %d POCs, %d msgs, %d bytes",
        record.task.task_id, len(involved), result.messages, result.bytes_sent,
    )
    return result
