"""Dishonest participant behaviours — the paper's threat model.

Distribution-phase strategies (Section III.A) act when the POC is built:

* **deletion** — omit RFID-traces from the committed set;
* **addition** — commit fake traces for products never processed;
* **modification** — commit altered ``da`` data for processed products.

Query-phase strategies (Section III.B) act when answering the proxy:

* **claim non-processing** (bad product) / **claim processing** (good
  product) — lie about having handled the product, backed by a best-effort
  forged proof;
* **wrong trace** — return a tampered trace;
* **wrong next participant** — misdirect the path traversal;
* **refusal** — stonewall instead of answering.

Coalitions are expressed by giving the same behaviour to every participant
on a path (see :func:`coalition_on_path`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "DistributionStrategy",
    "QueryStrategy",
    "Behavior",
    "HONEST",
    "deletion_of",
    "addition_of",
    "modification_of",
    "coalition_on_path",
]


@dataclass(frozen=True)
class DistributionStrategy:
    """What the participant does to its trace set before POC-Agg."""

    delete_ids: frozenset[int] = frozenset()
    add_traces: tuple[tuple[int, bytes], ...] = ()
    modify_traces: tuple[tuple[int, bytes], ...] = ()

    @property
    def is_honest(self) -> bool:
        return not (self.delete_ids or self.add_traces or self.modify_traces)

    def apply(self, traces: dict[int, bytes]) -> dict[int, bytes]:
        """The committed trace set after applying this strategy."""
        committed = {
            pid: data for pid, data in traces.items() if pid not in self.delete_ids
        }
        for pid, fake_data in self.add_traces:
            committed[pid] = fake_data
        for pid, new_data in self.modify_traces:
            if pid in committed:
                committed[pid] = new_data
        return committed


@dataclass(frozen=True)
class QueryStrategy:
    """How the participant answers the proxy's query interactions."""

    claim_non_processing: bool = False
    claim_processing: bool = False
    wrong_trace: bool = False
    wrong_next: str | None = None  # "drop", "non-child", or a participant id
    refuse_reveal: bool = False
    refuse_all: bool = False

    @property
    def is_honest(self) -> bool:
        return self == QueryStrategy()


@dataclass(frozen=True)
class Behavior:
    """A participant's full strategy across both phases."""

    distribution: DistributionStrategy = field(default_factory=DistributionStrategy)
    query: QueryStrategy = field(default_factory=QueryStrategy)

    @property
    def is_honest(self) -> bool:
        return self.distribution.is_honest and self.query.is_honest


HONEST = Behavior()


def deletion_of(*product_ids: int) -> Behavior:
    """Delete the given products' traces at POC construction."""
    return Behavior(distribution=DistributionStrategy(delete_ids=frozenset(product_ids)))


def addition_of(*fakes: tuple[int, bytes]) -> Behavior:
    """Add fake traces at POC construction."""
    return Behavior(distribution=DistributionStrategy(add_traces=tuple(fakes)))


def modification_of(*changes: tuple[int, bytes]) -> Behavior:
    """Modify the da-part of committed traces."""
    return Behavior(distribution=DistributionStrategy(modify_traces=tuple(changes)))


def coalition_on_path(
    path: list[str], behavior: Behavior
) -> dict[str, Behavior]:
    """The same dishonest behaviour for every participant on a path.

    Models the paper's coordinated-participants threat ("all the
    participants on a path may delete the RFID-traces of their processed
    products").
    """
    return {participant_id: replace(behavior) for participant_id in path}
