"""Exception types for the DE-Sword protocol layer."""

from __future__ import annotations

__all__ = [
    "DeSwordError",
    "ProtocolError",
    "UnknownParticipantError",
    "PocListError",
]


class DeSwordError(Exception):
    """Base class for protocol-layer errors."""


class ProtocolError(DeSwordError):
    """A message arrived that violates the protocol state machine."""


class UnknownParticipantError(DeSwordError):
    """A message referenced a participant the network does not know."""


class PocListError(DeSwordError):
    """A POC list failed structural validation."""
