"""Exception types for the DE-Sword protocol layer."""

from __future__ import annotations

__all__ = [
    "DeSwordError",
    "ProtocolError",
    "UnknownParticipantError",
    "PocListError",
    "NetworkTimeout",
    "ParticipantUnresponsiveError",
    "DistributionPhaseError",
]


class DeSwordError(Exception):
    """Base class for protocol-layer errors."""


class ProtocolError(DeSwordError):
    """A message arrived that violates the protocol state machine."""


class UnknownParticipantError(DeSwordError):
    """A message referenced a participant the network does not know."""


class PocListError(DeSwordError):
    """A POC list failed structural validation."""


class NetworkTimeout(DeSwordError):
    """A message was lost in flight (drop, partition, crashed endpoint).

    In the synchronous simulator this is how non-delivery surfaces: the
    sender waited out its deadline and heard nothing.  The retry layer
    catches it and backs off; callers without a retry policy see a single
    failed attempt.
    """


class ParticipantUnresponsiveError(NetworkTimeout):
    """Retries exhausted: the recipient never answered within the deadline.

    Subclasses :class:`NetworkTimeout` so callers that tolerate one lost
    message tolerate a dead participant the same way.
    """


class DistributionPhaseError(DeSwordError):
    """The distribution phase could not complete a networked step.

    Carries the :class:`~repro.desword.distribution_phase.DistributionResume`
    checkpoint so a re-run can pick up where the phase stopped instead of
    redoing (and double-counting) the completed steps.
    """

    def __init__(self, task_id: str, resume, detail: str):
        super().__init__(f"distribution task {task_id!r} stalled: {detail}")
        self.task_id = task_id
        self.resume = resume
