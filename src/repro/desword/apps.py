"""Supply-chain applications on top of DE-Sword queries.

The paper's introduction motivates three applications of product path
information queries: contamination localization, counterfeit detection,
and targeted product recall.  Each is implemented against the proxy's
query interface only — the applications never see raw POCs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .experiment import Deployment
from .proxy import QueryResult

__all__ = [
    "LocalizationReport",
    "ContaminationLocalizationApp",
    "CounterfeitReport",
    "CounterfeitDetectionApp",
    "RecallReport",
    "TargetedRecallApp",
]


@dataclass
class LocalizationReport:
    """Outcome of a contamination investigation."""

    bad_products: list[int]
    query_results: list[QueryResult] = field(default_factory=list)
    suspect_ranking: list[tuple[str, int]] = field(default_factory=list)

    @property
    def prime_suspect(self) -> str | None:
        return self.suspect_ranking[0][0] if self.suspect_ranking else None


class ContaminationLocalizationApp:
    """Locate a contamination source from reported bad products.

    Queries the path of every reported bad product and ranks participants
    by how many bad paths they appear on; the common upstream participant
    of the bad products is the contamination source candidate.
    """

    def __init__(self, deployment: Deployment):
        self.deployment = deployment

    def investigate(self, bad_product_ids: list[int]) -> LocalizationReport:
        report = LocalizationReport(list(bad_product_ids))
        appearance: Counter[str] = Counter()
        for product_id in bad_product_ids:
            result = self.deployment.query(product_id, quality="bad")
            report.query_results.append(result)
            appearance.update(set(result.path))
        report.suspect_ranking = [
            (participant, count)
            for participant, count in appearance.most_common()
        ]
        return report


@dataclass
class CounterfeitReport:
    """Verdict for one market-sampled product."""

    product_id: int
    genuine: bool
    path: list[str]
    reason: str


class CounterfeitDetectionApp:
    """Check whether a market-sampled product id is genuine.

    A genuine product has a verifiable path starting at an initial
    participant; an id no initial participant can prove ownership of is a
    counterfeit suspect (its tag was never issued by the chain).
    """

    def __init__(self, deployment: Deployment):
        self.deployment = deployment

    def check(self, product_id: int) -> CounterfeitReport:
        result = self.deployment.query(product_id, quality="good")
        if not result.found:
            return CounterfeitReport(
                product_id,
                genuine=False,
                path=[],
                reason="no initial participant can prove ownership",
            )
        return CounterfeitReport(
            product_id,
            genuine=True,
            path=result.path,
            reason=f"verifiable path of length {len(result.path)}",
        )


@dataclass
class RecallReport:
    """Products flagged for recall after a source was identified."""

    source_participant: str
    candidates_checked: int
    recalled_products: list[int] = field(default_factory=list)
    paths: dict[int, list[str]] = field(default_factory=dict)


class TargetedRecallApp:
    """Recall exactly the products that passed through a bad participant.

    Given the contamination source (typically from
    :class:`ContaminationLocalizationApp`), queries candidate products and
    recalls those whose verified path includes the source — the targeted
    alternative to a blanket recall.
    """

    def __init__(self, deployment: Deployment):
        self.deployment = deployment

    def recall(
        self, source_participant: str, candidate_product_ids: list[int]
    ) -> RecallReport:
        report = RecallReport(source_participant, len(candidate_product_ids))
        for product_id in candidate_product_ids:
            result = self.deployment.query(product_id, quality="good")
            report.paths[product_id] = result.path
            if source_participant in result.path:
                report.recalled_products.append(product_id)
        return report
