"""DE-Sword: the paper's incentivized verifiable query system.

The protocol layer on top of the POC scheme: the simulated network,
participant nodes with honest and adversarial behaviours, the query proxy
with its double-edged reputation engine, the two protocol phases, the
motivating applications, and the quantitative incentive analysis.
"""

from .adversary import (
    HONEST,
    Behavior,
    DistributionStrategy,
    QueryStrategy,
    addition_of,
    coalition_on_path,
    deletion_of,
    modification_of,
)
from .apps import (
    ContaminationLocalizationApp,
    CounterfeitDetectionApp,
    CounterfeitReport,
    LocalizationReport,
    RecallReport,
    TargetedRecallApp,
)
from .config import DeSwordConfig
from .detection import (
    CLAIM_NON_PROCESSING,
    CLAIM_PROCESSING,
    INVALID_PROOF,
    REFUSAL,
    TIMEOUT,
    UNRESPONSIVE,
    WRONG_NEXT,
    WRONG_TRACE,
    Violation,
)
from .distribution_phase import (
    DistributionPhaseResult,
    DistributionResume,
    run_distribution_phase,
)
from .errors import (
    DeSwordError,
    DistributionPhaseError,
    NetworkTimeout,
    ParticipantUnresponsiveError,
    PocListError,
    ProtocolError,
    UnknownParticipantError,
)
from .experiment import Deployment
from .incentives import (
    STRATEGIES,
    IncentiveParams,
    StrategyOutcome,
    balanced_negative_score,
    expected_gain_per_trace,
    monte_carlo_outcomes,
    utility_per_trace,
    variance_per_trace,
)
from .messages import (
    BAD_QUERY,
    GOOD_QUERY,
    CatalogRequest,
    CatalogResponse,
    Message,
    NextParticipantRequest,
    NextParticipantResponse,
    PathQuery,
    PathQueryResult,
    PocListSubmission,
    PocTransfer,
    ProofResponse,
    PsBroadcast,
    QueryRequest,
    RevealRequest,
)
from .network import LatencyModel, NetworkStats, SimNetwork, Transport
from .nodes import ParticipantNode
from .poclist import PocList
from .proxy import ProbeOutcome, QueryProxy, QueryResult
from .reputation import ReputationEngine, ReputationPolicy, ScoreEvent
from .transcript import TranscriptEntry, TranscriptRecorder

__all__ = [
    "Deployment",
    "DeSwordConfig",
    "QueryProxy",
    "QueryResult",
    "ProbeOutcome",
    "ParticipantNode",
    "PocList",
    "SimNetwork",
    "LatencyModel",
    "NetworkStats",
    "ReputationEngine",
    "ReputationPolicy",
    "ScoreEvent",
    "TranscriptRecorder",
    "TranscriptEntry",
    "Behavior",
    "DistributionStrategy",
    "QueryStrategy",
    "HONEST",
    "deletion_of",
    "addition_of",
    "modification_of",
    "coalition_on_path",
    "Violation",
    "CLAIM_NON_PROCESSING",
    "CLAIM_PROCESSING",
    "WRONG_TRACE",
    "WRONG_NEXT",
    "REFUSAL",
    "INVALID_PROOF",
    "TIMEOUT",
    "UNRESPONSIVE",
    "run_distribution_phase",
    "DistributionPhaseResult",
    "DistributionResume",
    "ContaminationLocalizationApp",
    "CounterfeitDetectionApp",
    "TargetedRecallApp",
    "LocalizationReport",
    "CounterfeitReport",
    "RecallReport",
    "IncentiveParams",
    "StrategyOutcome",
    "STRATEGIES",
    "expected_gain_per_trace",
    "variance_per_trace",
    "utility_per_trace",
    "balanced_negative_score",
    "monte_carlo_outcomes",
    "Message",
    "PathQuery",
    "PathQueryResult",
    "CatalogRequest",
    "CatalogResponse",
    "Transport",
    "PsBroadcast",
    "PocTransfer",
    "PocListSubmission",
    "QueryRequest",
    "ProofResponse",
    "RevealRequest",
    "NextParticipantRequest",
    "NextParticipantResponse",
    "GOOD_QUERY",
    "BAD_QUERY",
    "DeSwordError",
    "ProtocolError",
    "PocListError",
    "UnknownParticipantError",
    "NetworkTimeout",
    "ParticipantUnresponsiveError",
    "DistributionPhaseError",
]
