"""POC lists (Section IV.B).

A POC list is a sub-digraph whose vertices hold the POCs of the
participants involved in one distribution task: the public parameter
handle, one POC per involved participant, and the set of (parent, child)
POC pairs reflecting their production relationships.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..poc.scheme import PocCredential
from ..zkedb.backend import EdbBackend
from .errors import PocListError

__all__ = ["PocList"]


def _pack_str(text: str) -> bytes:
    raw = text.encode()
    return struct.pack(">H", len(raw)) + raw


def _unpack_str(data: bytes, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from(">H", data, offset)
    start = offset + 2
    return data[start : start + length].decode(), start + length


def _pack_blob(blob: bytes) -> bytes:
    return struct.pack(">I", len(blob)) + blob


def _unpack_blob(data: bytes, offset: int) -> tuple[bytes, int]:
    (length,) = struct.unpack_from(">I", data, offset)
    start = offset + 4
    return data[start : start + length], start + length


@dataclass
class PocList:
    """The assembled (ps, {(POC_vi, POC_vj)}) structure."""

    task_id: str
    ps_id: str
    submitted_by: str
    pocs: dict[str, PocCredential] = field(default_factory=dict)
    pairs: set[tuple[str, str]] = field(default_factory=set)

    def add_poc(self, poc: PocCredential) -> None:
        existing = self.pocs.get(poc.participant_id)
        if existing is not None and existing is not poc:
            raise PocListError(
                f"duplicate POC for participant {poc.participant_id!r}"
            )
        self.pocs[poc.participant_id] = poc

    def add_pair(self, parent: str, child: str) -> None:
        if parent == child:
            raise PocListError("a POC pair cannot be reflexive")
        self.pairs.add((parent, child))

    def poc_of(self, participant_id: str) -> PocCredential | None:
        return self.pocs.get(participant_id)

    def children_of(self, participant_id: str) -> list[str]:
        return sorted(child for parent, child in self.pairs if parent == participant_id)

    def parents_of(self, participant_id: str) -> list[str]:
        return sorted(parent for parent, child in self.pairs if child == participant_id)

    def has_pair(self, parent: str, child: str) -> bool:
        return (parent, child) in self.pairs

    def participants(self) -> list[str]:
        return sorted(self.pocs)

    def is_leaf(self, participant_id: str) -> bool:
        return not self.children_of(participant_id)

    def validate(self) -> None:
        """Structural checks the proxy runs on submission."""
        if self.submitted_by not in self.pocs:
            raise PocListError("submitting participant has no POC in the list")
        for parent, child in self.pairs:
            if parent not in self.pocs or child not in self.pocs:
                raise PocListError(
                    f"pair ({parent!r}, {child!r}) references a missing POC"
                )
        # Every non-submitting participant must be reachable from the
        # submitter; an unreachable POC could never be visited by a query.
        reachable = {self.submitted_by}
        frontier = [self.submitted_by]
        while frontier:
            node = frontier.pop()
            for child in self.children_of(node):
                if child not in reachable:
                    reachable.add(child)
                    frontier.append(child)
        unreachable = set(self.pocs) - reachable
        if unreachable:
            raise PocListError(
                f"POCs unreachable from submitter: {sorted(unreachable)}"
            )

    def size_bytes(self, backend: EdbBackend) -> int:
        """Wire size of the list as submitted to the proxy."""
        return len(self.to_bytes(backend))

    def to_bytes(self, backend: EdbBackend) -> bytes:
        """Canonical wire encoding of the whole list."""
        parts = [_pack_str(self.task_id), _pack_str(self.ps_id), _pack_str(self.submitted_by)]
        parts.append(struct.pack(">H", len(self.pocs)))
        for participant_id in sorted(self.pocs):
            poc = self.pocs[participant_id]
            parts.append(_pack_str(participant_id))
            parts.append(_pack_blob(backend.commitment_bytes(poc.commitment)))
        parts.append(struct.pack(">H", len(self.pairs)))
        for parent, child in sorted(self.pairs):
            parts.append(_pack_str(parent))
            parts.append(_pack_str(child))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes, backend) -> "PocList":
        """Parse a submitted list.

        ``backend`` is an :class:`~repro.zkedb.backend.EdbBackend` (the
        symmetric partner of :meth:`to_bytes`, like every other codec in
        the repo); commitment wire formats are backend-specific.  A bare
        ``decode(bytes)`` callable is still accepted as a back-compat
        shim for older call sites.
        """
        decode_commitment = getattr(backend, "decode_commitment_bytes", backend)
        if not callable(decode_commitment):
            raise TypeError(
                "backend must be an EdbBackend or a decode(bytes) callable"
            )
        offset = 0
        task_id, offset = _unpack_str(data, offset)
        ps_id, offset = _unpack_str(data, offset)
        submitted_by, offset = _unpack_str(data, offset)
        poc_list = cls(task_id, ps_id, submitted_by)
        (poc_count,) = struct.unpack_from(">H", data, offset)
        offset += 2
        for _ in range(poc_count):
            participant_id, offset = _unpack_str(data, offset)
            blob, offset = _unpack_blob(data, offset)
            poc_list.add_poc(PocCredential(participant_id, decode_commitment(blob)))
        (pair_count,) = struct.unpack_from(">H", data, offset)
        offset += 2
        for _ in range(pair_count):
            parent, offset = _unpack_str(data, offset)
            child, offset = _unpack_str(data, offset)
            poc_list.add_pair(parent, child)
        if offset != len(data):
            raise PocListError("trailing bytes in POC list encoding")
        return poc_list
