"""End-to-end deployment builder.

Wires a generated supply chain, a POC scheme, participant behaviours, the
simulated network, and the proxy into one object — the entry point the
examples, tests, and protocol benchmarks all use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.rng import DeterministicRng
from ..faults import BreakerPolicy, RetryPolicy
from ..poc.scheme import PocScheme
from ..supplychain.distribution import (
    DistributionTask,
    TaskRecord,
    run_distribution_task,
)
from ..supplychain.generator import GeneratedChain
from ..supplychain.quality import IndependentQualityModel, QualityOracle
from .adversary import HONEST, Behavior
from .distribution_phase import (
    DistributionPhaseResult,
    DistributionResume,
    replay_node_credentials,
    run_distribution_phase,
)
from .network import SimNetwork, Transport
from .nodes import ParticipantNode
from .proxy import QueryProxy, QueryResult
from .reputation import ReputationPolicy

__all__ = ["Deployment"]


@dataclass
class Deployment:
    """A running DE-Sword world: chain + nodes + network + proxy."""

    chain: GeneratedChain
    scheme: PocScheme
    network: Transport
    nodes: dict[str, ParticipantNode]
    proxy: QueryProxy
    rng: DeterministicRng
    task_records: dict[str, TaskRecord] = field(default_factory=dict)
    retry_policy: RetryPolicy | None = None

    @classmethod
    def build(
        cls,
        chain: GeneratedChain,
        scheme: PocScheme,
        oracle: QualityOracle | None = None,
        behaviors: dict[str, Behavior] | None = None,
        policy: ReputationPolicy | None = None,
        seed: str = "deployment",
        state_dir: str | None = None,
        network: Transport | None = None,
        retry: RetryPolicy | None = None,
        breaker: BreakerPolicy | None = None,
        shards: int = 1,
        replicas: int = 0,
        transport: Transport | None = None,
    ) -> "Deployment":
        """Assemble a world; ``state_dir`` attaches a durable state store.

        When the directory already holds journaled state, the proxy is
        restored from it before serving — crash recovery is just
        ``Deployment.build`` pointed back at the same directory.

        Chaos runs pass an explicit ``network`` (usually
        ``DeSwordConfig.build_network()``, a fault-injecting wrapper) and
        resilience policies: ``retry`` governs every node→proxy and
        proxy→node exchange, ``breaker`` arms per-participant quarantine.

        ``transport`` is the backend-neutral spelling of the same knob:
        anything satisfying the :class:`~repro.desword.network.Transport`
        protocol — the sim, the fault wrapper, or the socket-backed
        transport from :mod:`repro.service` — slots in without touching
        any call site.  Passing both ``network`` and ``transport`` is an
        error (they name the same parameter).

        ``shards > 1`` (or ``replicas > 0``) replaces the monolithic
        proxy with the sharded tier: a
        :class:`~repro.sharding.router.ProxyRouter` fronting N
        ``QueryProxy`` shards, each optionally backed by WAL-shipped
        replica stores under ``state_dir`` for failover.  The router
        presents the same query surface, so everything downstream
        (``distribute``/``query``/``sweep``) is shard-transparent.
        """
        if network is not None and transport is not None:
            raise ValueError(
                "pass either network= or transport= (aliases), not both"
            )
        rng = DeterministicRng(seed)
        network = transport if transport is not None else network
        network = network if network is not None else SimNetwork()
        oracle = oracle or IndependentQualityModel(beta=0.05, seed=seed)
        behaviors = behaviors or {}
        nodes = {}
        for participant_id, participant in chain.participants.items():
            node = ParticipantNode(
                participant,
                scheme,
                behaviors.get(participant_id, HONEST),
                rng.fork(f"node/{participant_id}"),
            )
            nodes[participant_id] = node
            network.register(participant_id, node)
        if shards > 1 or replicas > 0:
            from ..sharding import ProxyRouter

            proxy = ProxyRouter(
                scheme, network, oracle, policy,
                shards=shards, replicas=replicas,
                state_dir=state_dir, retry=retry, breaker=breaker,
            )
            if proxy.store is not None and proxy.store.state.applied:
                proxy.load_from_store()
        else:
            store = None
            if state_dir is not None:
                from ..store import ProxyStateStore

                store = ProxyStateStore.open(state_dir, backend=scheme.backend)
            proxy = QueryProxy(
                scheme, network, oracle, policy, store=store,
                retry=retry, breaker=breaker,
            )
            if store is not None and store.state.applied:
                proxy.load_from_store()
        return cls(
            chain, scheme, network, nodes, proxy, rng, retry_policy=retry
        )

    def set_behavior(self, participant_id: str, behavior: Behavior) -> None:
        """Assign a behaviour before the distribution phase runs."""
        self.nodes[participant_id].behavior = behavior

    @property
    def engine(self):
        """The ProofEngine all of this deployment's cryptography runs on.

        Distribution-phase POC aggregation and the proxy's sweep
        verification both fan out / batch through this engine.
        """
        return self.scheme._engine()

    def distribute(
        self,
        product_ids: list[int],
        task_id: str | None = None,
        initial: str | None = None,
    ) -> tuple[TaskRecord, DistributionPhaseResult]:
        """Run one distribution task: physical flow, then POC list assembly."""
        if task_id is None:
            # Skip ids already taken — a restored proxy may hold tasks
            # journaled by a previous process under the default naming.
            counter = len(self.task_records)
            while f"task{counter}" in self.proxy.poc_lists:
                counter += 1
            task_id = f"task{counter}"
        initial = initial or self.chain.initial()
        task = DistributionTask(task_id, initial, tuple(product_ids))
        record = run_distribution_task(
            self.chain.topology,
            self.chain.participants,
            task,
            self.rng.fork(f"task/{task_id}"),
        )
        self.task_records[task_id] = record
        phase = run_distribution_phase(
            self.nodes, record, self.network, self.proxy,
            retry=self.retry_policy,
        )
        return record, phase

    def replay_distribution(
        self,
        product_ids: list[int],
        task_id: str,
        initial: str | None = None,
    ) -> TaskRecord:
        """Rebuild node-side state for a journaled task after a restart.

        The durable store journals only the proxy's half of a task (POC
        lists, routes, awards); each participant's half — RFID traces,
        POC credential, shipping log — is a deterministic function of
        the deployment seed.  A restarted process re-runs the physical
        flow and per-node POC aggregation locally, byte-for-byte
        identical to the original run, and cross-checks the rebuilt
        POCs against the journaled list so a caller passing the wrong
        products (or seed) fails loudly instead of answering garbage.
        Nothing touches the proxy: no re-journaling, no double awards.
        """
        poc_list = self.proxy.poc_lists.get(task_id)
        if poc_list is None:
            raise KeyError(f"no journaled POC list for task {task_id!r}")
        initial = initial or self.chain.initial()
        task = DistributionTask(task_id, initial, tuple(product_ids))
        record = run_distribution_task(
            self.chain.topology,
            self.chain.participants,
            task,
            self.rng.fork(f"task/{task_id}"),
        )
        replay_node_credentials(self.nodes, record)
        backend = self.scheme.backend
        for participant_id in record.involved_participants:
            journaled = poc_list.poc_of(participant_id)
            rebuilt = self.nodes[participant_id].poc_for_task(task_id)
            if journaled is None or rebuilt is None or (
                journaled.to_bytes(backend) != rebuilt.to_bytes(backend)
            ):
                raise ValueError(
                    f"replayed POC for {participant_id!r} diverges from the "
                    f"journaled list for task {task_id!r}: the store was "
                    "written by a different product batch or seed"
                )
        self.task_records[task_id] = record
        return record

    def resume_distribution(
        self, task_id: str, resume: DistributionResume
    ) -> DistributionPhaseResult:
        """Re-run a stalled distribution phase from its checkpoint.

        The physical flow already happened (``task_records`` has it); only
        the wire steps the checkpoint says are missing get re-sent, so the
        resulting POC list is byte-identical to an uninterrupted run.
        """
        record = self.task_records[task_id]
        return run_distribution_phase(
            self.nodes, record, self.network, self.proxy,
            retry=self.retry_policy, resume=resume,
        )

    def query(self, product_id: int, quality: str | None = None) -> QueryResult:
        """The paper's interactive path query for one product."""
        return self.proxy.query_product(product_id, quality)

    def sweep(
        self,
        product_id: int,
        quality: str | None = None,
        apply_reputation: bool = True,
    ) -> QueryResult:
        """The exhaustive (everyone-is-asked) query variant."""
        return self.proxy.sweep_query(
            product_id, quality, apply_reputation=apply_reputation
        )

    def ground_truth_path(self, product_id: int) -> list[str]:
        for record in self.task_records.values():
            path = record.path_of(product_id)
            if path:
                return path
        return []
