"""Violation records: what the proxy detects and attributes.

Each constant corresponds to one dishonest behaviour of the query-phase
threat model (Section III.B); ``INVALID_PROOF`` and ``REFUSAL`` are the
observable symptoms through which the behaviours are caught.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Violation",
    "CLAIM_NON_PROCESSING",
    "CLAIM_PROCESSING",
    "WRONG_TRACE",
    "WRONG_NEXT",
    "REFUSAL",
    "INVALID_PROOF",
    "TIMEOUT",
    "UNRESPONSIVE",
]

CLAIM_NON_PROCESSING = "claim-non-processing"
CLAIM_PROCESSING = "claim-processing"
WRONG_TRACE = "wrong-trace"
WRONG_NEXT = "wrong-next-participant"
REFUSAL = "refusal"
INVALID_PROOF = "invalid-proof"
# Non-response detections: a participant that strategically goes dark is
# economically indistinguishable from one running the deletion strategy,
# so the proxy attributes silence the same way (Section V's adversary may
# simply not answer).  TIMEOUT is one exhausted request; UNRESPONSIVE is
# a probe skipped because the participant's circuit breaker is open.
TIMEOUT = "timeout"
UNRESPONSIVE = "unresponsive"


@dataclass(frozen=True)
class Violation:
    """A detected protocol violation.

    ``attributable`` is False for inconsistencies the proxy observes but
    cannot pin on one party — e.g. a claimed next participant that denies
    processing, which is equally consistent with the *next* participant
    having deleted its trace.  Non-attributable violations are surfaced in
    query results but carry no reputation penalty.
    """

    kind: str
    participant_id: str
    product_id: int
    detail: str = ""
    attributable: bool = True

    def __str__(self) -> str:
        note = f" ({self.detail})" if self.detail else ""
        return f"[{self.kind}] {self.participant_id} on product {self.product_id:#x}{note}"
