"""Participant protocol endpoints.

A :class:`ParticipantNode` wraps a supply-chain participant with its
protocol state: the POC/DPOC pairs it has constructed (one per
distribution task), its shipping log (whom it forwarded each product to),
and a :class:`~repro.desword.adversary.Behavior` controlling how honestly
it constructs POCs and answers the proxy.

Dishonest answers are *best-effort forgeries*: a participant that lies
about processing a product backs the lie with a real proof generated from
a freshly committed fake database — a proof that is internally consistent
but cannot verify against the participant's actual POC, which is exactly
what the security analysis says the proxy will catch.
"""

from __future__ import annotations

import dataclasses

from ..crypto.rng import DeterministicRng
from ..poc.scheme import (
    OWNERSHIP,
    PocCredential,
    PocDecommitment,
    PocProof,
    PocScheme,
)
from ..supplychain.participant import Participant
from .adversary import HONEST, Behavior
from .messages import (
    BAD_QUERY,
    GOOD_QUERY,
    Message,
    NextParticipantRequest,
    NextParticipantResponse,
    ProofResponse,
    QueryRequest,
    RevealRequest,
)

__all__ = ["ParticipantNode"]


class ParticipantNode:
    """Protocol endpoint for one supply-chain participant."""

    def __init__(
        self,
        participant: Participant,
        scheme: PocScheme,
        behavior: Behavior = HONEST,
        rng: DeterministicRng | None = None,
    ):
        self.participant = participant
        self.scheme = scheme
        self.behavior = behavior
        self.rng = rng or DeterministicRng(f"node/{participant.participant_id}")
        # One (poc, dpoc, committed traces) triple per distribution task.
        self._credentials: list[tuple[PocCredential, PocDecommitment, dict[int, bytes], str]] = []
        self.ship_log: dict[int, str | None] = {}
        self._forgeries: dict[str, PocDecommitment] = {}

    @property
    def participant_id(self) -> str:
        return self.participant.participant_id

    # -- distribution phase ---------------------------------------------------

    def build_poc(self, task_id: str) -> PocCredential:
        """POC-Agg over this participant's traces, as (mis)shaped by its
        distribution-phase behaviour."""
        committed, rng = self.poc_input(task_id)
        poc, dpoc = self.scheme.poc_agg(
            committed, self.participant_id, rng, prior=self.latest_dpoc()
        )
        self.accept_credential(poc, dpoc, committed, task_id)
        return poc

    def latest_dpoc(self) -> PocDecommitment | None:
        """The newest credential's DPOC, if any.

        Successive distribution tasks commit a superset of the previous
        task's traces, so the newest decommitment seeds incremental
        recommitment in POC-Agg (only the traces added since then are
        re-committed).
        """
        if not self._credentials:
            return None
        return self._credentials[-1][1]

    def poc_input(self, task_id: str) -> tuple[dict[int, bytes], DeterministicRng]:
        """The traces this node would commit for a task, plus its randomness.

        Exposed separately from :meth:`build_poc` so the distribution phase
        can aggregate many participants' POCs in one parallel batch while
        keeping each node's randomness (and hence its POC bytes) identical
        to the serial path.
        """
        true_traces = self.participant.database.as_poc_input()
        committed = self.behavior.distribution.apply(true_traces)
        return committed, self.rng.fork(f"poc/{task_id}")

    def accept_credential(
        self,
        poc: PocCredential,
        dpoc: PocDecommitment,
        committed: dict[int, bytes],
        task_id: str,
    ) -> None:
        """Store an externally aggregated credential (see :meth:`poc_input`)."""
        self._credentials.append((poc, dpoc, committed, task_id))

    def record_shipments(self, shipments: dict[int, str | None]) -> None:
        """Remember whom each product was forwarded to."""
        self.ship_log.update(shipments)

    def poc_for_task(self, task_id: str) -> PocCredential | None:
        for poc, _, _, tid in self._credentials:
            if tid == task_id:
                return poc
        return None

    def _credential_for(self, poc_bytes: bytes) -> tuple | None:
        for poc, dpoc, committed, task_id in self._credentials:
            if poc.to_bytes(self.scheme.backend) == poc_bytes:
                return poc, dpoc, committed, task_id
        return None

    # -- forged proofs -----------------------------------------------------------

    def _forged_ownership(self, product_id: int) -> PocProof:
        """A proof of processing for a product never committed."""
        key = f"own/{product_id}"
        if key not in self._forgeries:
            fake_trace = {product_id: b"v=%s;op=forged" % self.participant_id.encode()}
            _, dpoc = self.scheme.poc_agg(
                fake_trace, self.participant_id, self.rng.fork(key)
            )
            self._forgeries[key] = dpoc
        return self.scheme.poc_proof(self._forgeries[key], product_id)

    def _forged_non_ownership(self, product_id: int) -> PocProof:
        """A proof of non-processing for a committed product."""
        key = "nown"
        if key not in self._forgeries:
            _, dpoc = self.scheme.poc_agg({}, self.participant_id, self.rng.fork(key))
            self._forgeries[key] = dpoc
        return self.scheme.poc_proof(self._forgeries[key], product_id)

    @staticmethod
    def _tamper_trace(proof: PocProof) -> PocProof:
        """Swap the trace payload inside an ownership proof."""
        if proof.kind != OWNERSHIP:
            return proof
        tampered_inner = dataclasses.replace(proof.inner, value=b"op=tampered")
        return PocProof(OWNERSHIP, tampered_inner)

    # -- query phase ----------------------------------------------------------

    def _answer_query(self, request: QueryRequest) -> ProofResponse:
        if self.behavior.query.refuse_all:
            return self._respond(None)
        credential = self._credential_for(request.poc_bytes)
        if credential is None:
            # Queried with a POC that is not ours; nothing we can prove.
            return self._respond(None)
        _, dpoc, committed, _ = credential
        processed = request.product_id in committed
        strategy = self.behavior.query

        if request.query_kind == GOOD_QUERY:
            if processed:
                proof = self.scheme.poc_proof(dpoc, request.product_id)
                if strategy.wrong_trace:
                    proof = self._tamper_trace(proof)
                return self._respond(proof)
            if strategy.claim_processing:
                return self._respond(self._forged_ownership(request.product_id))
            # Honest non-processor: prove non-ownership (not identified).
            return self._respond(self.scheme.poc_proof(dpoc, request.product_id))

        if request.query_kind == BAD_QUERY:
            if not processed:
                return self._respond(self.scheme.poc_proof(dpoc, request.product_id))
            if strategy.claim_non_processing:
                return self._respond(self._forged_non_ownership(request.product_id))
            proof = self.scheme.poc_proof(dpoc, request.product_id)
            if strategy.wrong_trace:
                proof = self._tamper_trace(proof)
            return self._respond(proof)

        return self._respond(None)

    def _answer_reveal(self, request: RevealRequest) -> ProofResponse:
        if self.behavior.query.refuse_reveal or self.behavior.query.refuse_all:
            return self._respond(None)
        for _, dpoc, committed, _ in self._credentials:
            if request.product_id in committed:
                proof = self.scheme.poc_proof(dpoc, request.product_id)
                if self.behavior.query.wrong_trace:
                    proof = self._tamper_trace(proof)
                return self._respond(proof)
        return self._respond(None)

    def _answer_next(self, request: NextParticipantRequest) -> NextParticipantResponse:
        strategy = self.behavior.query
        if strategy.wrong_next == "drop":
            return NextParticipantResponse(None)
        if strategy.wrong_next == "non-child":
            return NextParticipantResponse(f"{self.participant_id}-phantom")
        if strategy.wrong_next:
            return NextParticipantResponse(strategy.wrong_next)
        return NextParticipantResponse(self.ship_log.get(request.product_id))

    def _respond(self, proof: PocProof | None) -> ProofResponse:
        proof_bytes = proof.to_bytes(self.scheme.backend) if proof is not None else None
        return ProofResponse(self.participant_id, proof_bytes, proof)

    # -- endpoint interface ------------------------------------------------------

    def handle_message(self, sender: str, message: Message) -> Message | None:
        del sender
        if isinstance(message, QueryRequest):
            return self._answer_query(message)
        if isinstance(message, RevealRequest):
            return self._answer_reveal(message)
        if isinstance(message, NextParticipantRequest):
            return self._answer_next(message)
        return None

    def __repr__(self) -> str:
        tag = "honest" if self.behavior.is_honest else "dishonest"
        return f"ParticipantNode({self.participant_id!r}, {tag})"
