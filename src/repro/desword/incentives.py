"""Quantitative analysis of the double-edged reputation incentive.

The paper argues qualitatively (Section II.C, Figure 3) that deletion and
addition are deterred because a participant "cannot confirm if they can
acquire definite reputation benefits".  This module makes that argument
quantitative:

* per-trace expected reputation gain of each strategy (keep / delete /
  add) as a function of the bad-product probability beta, the proxy's
  good/bad query sampling rates, and the score magnitudes;
* the *balanced* negative score that zeroes both deviations' expected
  gains — the proxy's tuning knob;
* a mean-variance utility for risk-averse participants, under which
  honesty strictly dominates at the balanced point because deviations add
  variance (the formal content of "double-edged");
* a Monte-Carlo simulator over the abstract reward process, used by the
  incentive benchmarks (experiment E7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..crypto.rng import DeterministicRng

__all__ = [
    "IncentiveParams",
    "StrategyOutcome",
    "expected_gain_per_trace",
    "variance_per_trace",
    "utility_per_trace",
    "balanced_negative_score",
    "monte_carlo_outcomes",
    "STRATEGIES",
]

STRATEGIES = ("honest", "delete", "add")


@dataclass(frozen=True)
class IncentiveParams:
    """The reward process parameters.

    ``query_prob_bad`` is typically much larger than ``query_prob_good``:
    bad products trigger contamination/recall queries while good products
    are only sampled from the market.
    """

    beta: float = 0.02               # probability a product turns out bad
    query_prob_good: float = 0.05    # market-sampling rate for good products
    query_prob_bad: float = 0.9      # query rate once a product is found bad
    positive_score: float = 1.0
    negative_score: float = -1.0
    risk_aversion: float = 0.5       # lambda in U = E - lambda * Var

    def __post_init__(self):
        for name in ("beta", "query_prob_good", "query_prob_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability")
        if self.positive_score <= 0 or self.negative_score >= 0:
            raise ValueError("scores must satisfy s+ > 0 > s-")


def _per_trace_moments(params: IncentiveParams) -> tuple[float, float]:
    """(mean, variance) of the reputation delta from holding one trace."""
    p_good_scored = (1 - params.beta) * params.query_prob_good
    p_bad_scored = params.beta * params.query_prob_bad
    mean = p_good_scored * params.positive_score + p_bad_scored * params.negative_score
    second = (
        p_good_scored * params.positive_score**2
        + p_bad_scored * params.negative_score**2
    )
    return mean, second - mean * mean


def expected_gain_per_trace(params: IncentiveParams, strategy: str) -> float:
    """Expected reputation change per trace, relative to doing nothing.

    * ``honest`` — hold the real trace;
    * ``delete`` — drop a real trace (forfeits the honest value);
    * ``add`` — hold one extra fake trace (gains another draw of the same
      double-edged gamble).
    """
    mean, _ = _per_trace_moments(params)
    if strategy == "honest":
        return mean
    if strategy == "delete":
        return -mean  # what deviating from honest changes
    if strategy == "add":
        return mean
    raise ValueError(f"unknown strategy {strategy!r}")


def variance_per_trace(params: IncentiveParams, strategy: str) -> float:
    """Variance each strategy adds relative to honest behaviour."""
    _, var = _per_trace_moments(params)
    if strategy == "honest":
        return 0.0
    # Both deviations add or remove one independent gamble; either way the
    # participant's *deviation* payoff has the gamble's variance.
    return var


def utility_per_trace(params: IncentiveParams, strategy: str) -> float:
    """Mean-variance utility of deviating: U = E - lambda * Var.

    At the balanced point, honest has U = 0 while both deviations have
    U < 0 — the double-edged deterrent in one number.
    """
    return expected_gain_per_trace(params, strategy) - (
        params.risk_aversion * variance_per_trace(params, strategy)
    )


def balanced_negative_score(params: IncentiveParams) -> float:
    """The s- that zeroes the expected gain of both deviations.

    Solves (1-beta) * rho_g * s+ + beta * rho_b * s- = 0; the proxy picks
    its penalty magnitude from here (or more negative, to push deletion's
    appeal below zero at the cost of making addition's mean positive —
    the trade-off experiment E7 sweeps).
    """
    denominator = params.beta * params.query_prob_bad
    if denominator == 0:
        raise ValueError("beta * query_prob_bad must be positive")
    return -(1 - params.beta) * params.query_prob_good * params.positive_score / denominator


@dataclass(frozen=True)
class StrategyOutcome:
    """Monte-Carlo summary for one strategy."""

    strategy: str
    mean: float
    std: float
    utility: float
    win_rate: float  # fraction of trials where deviating beat honesty


def monte_carlo_outcomes(
    params: IncentiveParams,
    traces_per_participant: int,
    trials: int,
    rng: DeterministicRng,
) -> dict[str, StrategyOutcome]:
    """Simulate the reward process for each strategy.

    ``delete`` deletes one trace, ``add`` adds one fake trace; the summary
    reports the *deviation* payoff against the honest baseline on the same
    randomness (common random numbers, so the comparison is paired).
    """
    results: dict[str, list[float]] = {name: [] for name in STRATEGIES}
    for trial in range(trials):
        trial_rng = rng.fork(f"trial/{trial}")
        # The payoff of holding one trace, drawn once per product.
        draws = []
        for _ in range(traces_per_participant + 1):  # +1 for the fake trace
            is_bad = trial_rng.random() < params.beta
            query_prob = params.query_prob_bad if is_bad else params.query_prob_good
            queried = trial_rng.random() < query_prob
            if not queried:
                draws.append(0.0)
            else:
                draws.append(
                    params.negative_score if is_bad else params.positive_score
                )
        honest_payoff = sum(draws[:-1])
        results["honest"].append(honest_payoff)
        results["delete"].append(honest_payoff - draws[0])
        results["add"].append(honest_payoff + draws[-1])

    outcomes = {}
    honest = results["honest"]
    for name in STRATEGIES:
        values = results[name]
        mean = sum(values) / trials
        var = sum((v - mean) ** 2 for v in values) / max(trials - 1, 1)
        deviation_mean = mean - sum(honest) / trials
        deviation_params = replace(params)
        utility = deviation_mean - deviation_params.risk_aversion * (
            0.0
            if name == "honest"
            else _paired_deviation_variance(values, honest)
        )
        wins = sum(1 for v, h in zip(values, honest) if v > h)
        outcomes[name] = StrategyOutcome(
            strategy=name,
            mean=mean,
            std=math.sqrt(var),
            utility=utility,
            win_rate=wins / trials,
        )
    return outcomes


def _paired_deviation_variance(values: list[float], baseline: list[float]) -> float:
    deltas = [v - h for v, h in zip(values, baseline)]
    mean = sum(deltas) / len(deltas)
    return sum((d - mean) ** 2 for d in deltas) / max(len(deltas) - 1, 1)
