"""A deterministic message-passing network simulator.

Endpoints register under their identity; ``request`` delivers a message
synchronously and returns the response, while the network accounts bytes,
message counts, and simulated latency.  The protocols are sequential
request/response chains, so a synchronous simulator reproduces their
communication costs faithfully.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol, runtime_checkable

from ..obs import TraceContext, default_registry, trace
from .errors import ProtocolError, UnknownParticipantError
from .messages import Message

__all__ = [
    "Endpoint",
    "LatencyModel",
    "NetworkStats",
    "SimNetwork",
    "Transport",
    "stamp_trace",
    "wire_span",
]


def stamp_trace(message: Message, ctx: TraceContext | None = None) -> Message:
    """Stamp a trace context onto a message envelope (idempotent).

    With no explicit ``ctx`` the caller's innermost open span is used; a
    message that already carries a context, or a caller with no active
    trace, passes through unchanged — so untraced traffic stays
    completely context-free.
    """
    if message.trace_ctx is not None:
        return message
    ctx = ctx if ctx is not None else trace.current_context()
    if ctx is None:
        return message
    return dataclasses.replace(message, trace_ctx=ctx)


def wire_span(name: str, message: Message, peer: str):
    """Open a wire-leg span and stamp its context onto ``message``.

    Yields the (possibly re-stamped) message.  Outside an active trace
    this is a true pass-through: no span, no stamping, no generator —
    network layers only emit spans for traffic that belongs to some
    traced operation, which keeps root retention bounded and untraced
    runs overhead-free.
    """
    if trace.current_context() is None:
        return nullcontext(message)
    return _traced_wire_span(name, message, peer)


@contextmanager
def _traced_wire_span(name: str, message: Message, peer: str) -> Iterator[Message]:
    with trace.span(name, kind=message.kind, peer=peer) as span:
        if span is not None and message.trace_ctx is None:
            message = dataclasses.replace(
                message,
                trace_ctx=TraceContext(span.trace_id, span.span_id, span.baggage),
            )
        yield message


class Endpoint(Protocol):
    """Anything that can receive protocol messages."""

    def handle_message(self, sender: str, message: Message) -> Message | None: ...


@runtime_checkable
class Transport(Protocol):
    """The shared surface every message backend implements.

    :class:`SimNetwork`, :class:`~repro.faults.network.FaultyNetwork`,
    and the socket-backed
    :class:`~repro.service.client.SocketTransport` all satisfy this
    protocol, so ``Deployment.build(transport=...)`` selects the backend
    without any call-site caring which fabric carries the bytes.
    Registration manages the identity -> :class:`Endpoint` table;
    ``send`` is fire-and-forget, ``request`` a round trip returning the
    response (or ``None``); ``stats`` accounts traffic either way.
    """

    stats: "NetworkStats"

    def register(self, identity: str, endpoint: Endpoint) -> None: ...

    def replace(self, identity: str, endpoint: Endpoint) -> Endpoint: ...

    def unregister(self, identity: str) -> None: ...

    def knows(self, identity: str) -> bool: ...

    def send(self, sender: str, recipient: str, message: Message) -> None: ...

    def request(
        self, sender: str, recipient: str, message: Message
    ) -> Message | None: ...

    def reset_stats(self) -> "NetworkStats": ...


@dataclass(frozen=True)
class LatencyModel:
    """Latency = base + bytes / bandwidth, in simulated milliseconds."""

    base_ms: float = 1.0
    bandwidth_bytes_per_ms: float = 125_000.0  # ~1 Gbps

    def __post_init__(self):
        # A zero bandwidth silently turns every latency into inf, which
        # poisons downstream simulated-time arithmetic; reject it here.
        if self.base_ms < 0:
            raise ValueError(f"base_ms must be >= 0, got {self.base_ms}")
        if self.bandwidth_bytes_per_ms <= 0:
            raise ValueError(
                "bandwidth_bytes_per_ms must be > 0, "
                f"got {self.bandwidth_bytes_per_ms}"
            )

    def latency_for(self, size_bytes: int) -> float:
        return self.base_ms + size_bytes / self.bandwidth_bytes_per_ms


@dataclass
class NetworkStats:
    """Aggregate traffic accounting."""

    messages: int = 0
    bytes_sent: int = 0
    simulated_ms: float = 0.0
    per_kind: dict[str, int] = field(default_factory=dict)
    bytes_per_kind: dict[str, int] = field(default_factory=dict)
    # Socket-tier vitals, filled in place by a running
    # :class:`~repro.service.server.ServiceServer` (active connections,
    # queue depth/peak, sheds).  Empty — and absent from snapshots — for
    # purely simulated runs, so byte-level comparisons of sim snapshots
    # are unaffected.
    service: dict = field(default_factory=dict)

    def record(self, message: Message, latency_ms: float) -> None:
        size = message.size_bytes()
        self.messages += 1
        self.bytes_sent += size
        self.simulated_ms += latency_ms
        self.per_kind[message.kind] = self.per_kind.get(message.kind, 0) + 1
        self.bytes_per_kind[message.kind] = (
            self.bytes_per_kind.get(message.kind, 0) + size
        )

    def snapshot(self) -> dict:
        out = {
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "simulated_ms": round(self.simulated_ms, 3),
            "per_kind": dict(self.per_kind),
            "bytes_per_kind": dict(self.bytes_per_kind),
        }
        if self.service:
            out["service"] = dict(self.service)
        return out


class SimNetwork:
    """Synchronous request/response delivery with byte accounting."""

    def __init__(self, latency: LatencyModel | None = None):
        self.latency = latency or LatencyModel()
        self.stats = NetworkStats()
        self._endpoints: dict[str, Endpoint] = {}
        self._taps: list[Callable[[str, str, Message], None]] = []

    def register(self, identity: str, endpoint: Endpoint) -> None:
        """Attach a new endpoint; identities are unique.

        Silently overwriting an existing registration used to let one
        participant shadow another; use :meth:`replace` when substituting
        an endpoint deliberately (fault injection, node restarts).
        """
        if identity in self._endpoints:
            raise ProtocolError(f"endpoint {identity!r} is already registered")
        self._endpoints[identity] = endpoint

    def replace(self, identity: str, endpoint: Endpoint) -> Endpoint:
        """Swap the endpoint behind an existing identity; returns the old one."""
        if identity not in self._endpoints:
            raise UnknownParticipantError(
                f"cannot replace unknown endpoint {identity!r}"
            )
        old = self._endpoints[identity]
        self._endpoints[identity] = endpoint
        return old

    def unregister(self, identity: str) -> None:
        if identity not in self._endpoints:
            raise UnknownParticipantError(
                f"cannot unregister unknown endpoint {identity!r}"
            )
        del self._endpoints[identity]

    def knows(self, identity: str) -> bool:
        return identity in self._endpoints

    def add_tap(self, tap: Callable[[str, str, Message], None]) -> None:
        """Observe every delivered message (used by tests and tracing)."""
        self._taps.append(tap)

    def _account(self, message: Message) -> None:
        """Per-interaction metrics: message/byte counters by wire kind."""
        self.stats.record(message, self.latency.latency_for(message.size_bytes()))
        metrics = default_registry()
        metrics.counter("net.messages", kind=message.kind).inc()
        metrics.counter("net.bytes", kind=message.kind).inc(message.size_bytes())

    def _deliver(self, sender: str, recipient: str, message: Message) -> Message | None:
        if recipient not in self._endpoints:
            raise UnknownParticipantError(f"no endpoint registered for {recipient!r}")
        self._account(message)
        for tap in self._taps:
            tap(sender, recipient, message)
        ctx = message.trace_ctx
        if ctx is None:
            return self._endpoints[recipient].handle_message(sender, message)
        # The receiving side of the hop: explicitly parented on the
        # envelope's context, so redeliveries of the same frame each show
        # up as their own handle span under the sending wire span.
        with trace.span("net.handle", ctx=ctx, kind=message.kind, node=recipient):
            return self._endpoints[recipient].handle_message(sender, message)

    def deliver(self, sender: str, recipient: str, message: Message) -> Message | None:
        """One accounted delivery leg; the response is returned unaccounted.

        Wrappers that manage request/response legs themselves (fault
        injection, duplication) build on this plus :meth:`account`.
        """
        return self._deliver(sender, recipient, message)

    def account(self, sender: str, recipient: str, message: Message) -> None:
        """Account (and tap) one delivered message without invoking a handler."""
        self._account(message)
        for tap in self._taps:
            tap(sender, recipient, message)

    def send(self, sender: str, recipient: str, message: Message) -> None:
        """One-way delivery (response, if any, is discarded)."""
        with wire_span("net.send", message, recipient) as message:
            self._deliver(sender, recipient, message)

    def request(self, sender: str, recipient: str, message: Message) -> Message | None:
        """Round trip: deliver and account the response as well."""
        with wire_span("net.request", message, recipient) as message:
            response = self._deliver(sender, recipient, message)
            if response is not None:
                self.account(recipient, sender, response)
            return response

    def reset_stats(self) -> NetworkStats:
        """Swap in a fresh stats object, returning the old one."""
        old, self.stats = self.stats, NetworkStats()
        return old
