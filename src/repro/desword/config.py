"""One-stop configuration for building DE-Sword deployments.

Bundles the choices an operator makes — curve, EDB backend and tree
shape, reputation policy, quality model — and builds the matching
:class:`~repro.poc.scheme.PocScheme`.  The examples use this as the
public "construct me a system" entry point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.bn import BNCurve, bn254, toy_bn
from ..crypto.rng import DeterministicRng
from ..engine import ProofEngine, resolve_executor
from ..faults import BreakerPolicy, FaultProfile, FaultyNetwork, RetryPolicy
from ..poc.scheme import PocScheme
from ..zkedb.backend import ZkEdbBackend
from ..zkedb.hash_backend import MerkleEdbBackend
from ..zkedb.params import EdbParams
from .network import SimNetwork
from .reputation import ReputationPolicy

__all__ = ["DeSwordConfig"]


@dataclass(frozen=True)
class DeSwordConfig:
    """System-level knobs with paper-faithful defaults."""

    backend_kind: str = "zk"  # "zk" (the paper) or "merkle" (baseline)
    curve_kind: str = "toy"   # "bn254" (production) or "toy" (fast)
    q: int = 8
    key_bits: int = 128
    positive_score: float = 1.0
    negative_score: float = -1.0
    violation_penalty: float = -3.0
    seed: str = "desword"
    # Execution policy: 0 or 1 keeps everything serial; N > 1 fans
    # proving/aggregation/verification out over N worker processes.
    workers: int = 0
    # Chaos / resilience: an optional seeded fault plan for the network,
    # plus retry and quarantine policies.  All default off, keeping the
    # reliable path byte-identical to a config that predates them.
    fault_profile: FaultProfile | None = None
    retry: RetryPolicy | None = None
    breaker: BreakerPolicy | None = None
    # Proxy-tier topology: 1/0 is the paper's monolithic proxy; shards > 1
    # fronts N consistent-hash shards with a ProxyRouter, and replicas > 0
    # keeps that many WAL-shipped replica stores per shard for failover
    # (replicas require a state_dir at Deployment.build time).
    shards: int = 1
    replicas: int = 0

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {self.replicas}")

    def curve(self) -> BNCurve:
        return bn254() if self.curve_kind == "bn254" else toy_bn()

    def build_network(self) -> SimNetwork | FaultyNetwork:
        """The deployment's wire: plain, or fault-injecting when profiled."""
        inner = SimNetwork()
        if self.fault_profile is not None and self.fault_profile.enabled:
            return FaultyNetwork(inner, self.fault_profile)
        return inner

    def reputation_policy(self) -> ReputationPolicy:
        return ReputationPolicy(
            positive_score=self.positive_score,
            negative_score=self.negative_score,
            violation_penalty=self.violation_penalty,
        )

    def build_engine(self) -> ProofEngine:
        """The execution layer all crypto in this deployment runs through."""
        return ProofEngine(resolve_executor(self.workers))

    def build_scheme(self) -> PocScheme:
        """PS-Gen for the configured backend."""
        engine = self.build_engine()
        if self.backend_kind == "merkle":
            backend = MerkleEdbBackend(q=self.q, key_bits=self.key_bits)
            return PocScheme.ps_gen(backend, self.key_bits, engine=engine)
        if self.backend_kind != "zk":
            raise ValueError(f"unknown backend kind {self.backend_kind!r}")
        params = EdbParams.generate(
            self.curve(),
            DeterministicRng(self.seed + "/crs"),
            q=self.q,
            key_bits=self.key_bits,
            engine=engine,
        )
        return PocScheme.ps_gen(ZkEdbBackend(params, engine=engine), self.key_bits)
