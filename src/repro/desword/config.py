"""One-stop configuration for building DE-Sword deployments.

Bundles the choices an operator makes — curve, EDB backend and tree
shape, reputation policy, quality model — and builds the matching
:class:`~repro.poc.scheme.PocScheme`.  The examples use this as the
public "construct me a system" entry point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.bn import BNCurve, bn254, toy_bn
from ..crypto.rng import DeterministicRng
from ..poc.scheme import PocScheme
from ..zkedb.backend import ZkEdbBackend
from ..zkedb.hash_backend import MerkleEdbBackend
from ..zkedb.params import EdbParams
from .reputation import ReputationPolicy

__all__ = ["DeSwordConfig"]


@dataclass(frozen=True)
class DeSwordConfig:
    """System-level knobs with paper-faithful defaults."""

    backend_kind: str = "zk"  # "zk" (the paper) or "merkle" (baseline)
    curve_kind: str = "toy"   # "bn254" (production) or "toy" (fast)
    q: int = 8
    key_bits: int = 128
    positive_score: float = 1.0
    negative_score: float = -1.0
    violation_penalty: float = -3.0
    seed: str = "desword"

    def curve(self) -> BNCurve:
        return bn254() if self.curve_kind == "bn254" else toy_bn()

    def reputation_policy(self) -> ReputationPolicy:
        return ReputationPolicy(
            positive_score=self.positive_score,
            negative_score=self.negative_score,
            violation_penalty=self.violation_penalty,
        )

    def build_scheme(self) -> PocScheme:
        """PS-Gen for the configured backend."""
        if self.backend_kind == "merkle":
            backend = MerkleEdbBackend(q=self.q, key_bits=self.key_bits)
            return PocScheme.ps_gen(backend, self.key_bits)
        if self.backend_kind != "zk":
            raise ValueError(f"unknown backend kind {self.backend_kind!r}")
        params = EdbParams.generate(
            self.curve(),
            DeterministicRng(self.seed + "/crs"),
            q=self.q,
            key_bits=self.key_bits,
        )
        return PocScheme.ps_gen(ZkEdbBackend(params), self.key_bits)
